package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
)

// Parallel-engine experiments: the sharded/windowed pipeline's
// scaling measurements and its counting checks.  The sequential
// experiments (E1–E4) establish the paper's n+1 vs 2n+2 accounting;
// these establish that the parallel engine preserves it — one frame is
// one wire item, so per-datum invocations stay ≈n+1 at any shard
// count, while Ejects scale to n·P+2.

// RunLinearDigest runs one linear pipeline like RunLinear and
// additionally returns a SHA-256 digest of the sink's byte stream
// (items in arrival order, length-prefixed, so reordering, splitting
// or merging items all change the digest).
func RunLinearDigest(d transput.Discipline, n, items int, opt transput.Options) (LinearResult, string, error) {
	k := newKernel()
	defer k.Shutdown()
	var count int64
	h := sha256.New()
	sink := func(in transput.ItemReader) error {
		var lenbuf [8]byte
		for {
			item, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			binary.BigEndian.PutUint64(lenbuf[:], uint64(len(item)))
			h.Write(lenbuf[:])
			h.Write(item)
			count++
		}
	}
	before := k.Metrics().Snapshot()
	p, err := transput.BuildPipeline(k, d, counterSource(items), identityFilters(n), sink, opt)
	if err != nil {
		return LinearResult{}, "", err
	}
	start := time.Now()
	if err := p.Run(); err != nil {
		return LinearResult{}, "", err
	}
	elapsed := time.Since(start)
	diff := metrics.Diff(before, k.Metrics().Snapshot())
	return LinearResult{
		Discipline:       d,
		Filters:          n,
		Items:            count,
		Ejects:           p.Ejects(),
		DataInvocations:  diff.Get("transfer_invocations") + diff.Get("deliver_invocations"),
		TotalInvocations: diff.Get("invocations"),
		ProcessSwitches:  diff.Get("process_switches"),
		BytesMoved:       diff.Get("bytes_moved"),
		Elapsed:          elapsed,
	}, hex.EncodeToString(h.Sum(nil)), nil
}

// parallelDisciplines is the sweep order for the parallel checks.
var parallelDisciplines = []transput.Discipline{
	transput.ReadOnly, transput.WriteOnly, transput.Buffered,
}

// VerifyParallel checks the parallel engine's contract: sharded and
// windowed runs produce byte-identical sink output, Shards=1/Window=1
// is indistinguishable from the sequential build, per-datum data
// invocations stay at the paper's figures, and Ejects scale as n·P+2
// (asymmetric) / 2 + n·P + (n+1)·P (buffered).
func VerifyParallel(p Params) []string {
	const P, W = 4, 4
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	for _, d := range parallelDisciplines {
		for _, n := range []int{1, 2} {
			base, baseDig, err := RunLinearDigest(d, n, p.Items, transput.Options{})
			if err != nil {
				fail("%v n=%d sequential: %v", d, n, err)
				continue
			}

			// Shards=1/Window=1 must be the sequential pipeline: same
			// output, same Ejects, same per-datum invocations.
			one, oneDig, err := RunLinearDigest(d, n, p.Items, transput.Options{Shards: 1, Window: 1})
			if err != nil {
				fail("%v n=%d shards=1: %v", d, n, err)
				continue
			}
			if oneDig != baseDig {
				fail("%v n=%d: shards=1/window=1 output differs from sequential", d, n)
			}
			if one.Ejects != base.Ejects {
				fail("%v n=%d: shards=1 Ejects %d != sequential %d", d, n, one.Ejects, base.Ejects)
			}
			if diff := math.Abs(one.PerDatum() - base.PerDatum()); diff > 0.05 {
				fail("%v n=%d: shards=1 inv/datum %.3f != sequential %.3f", d, n, one.PerDatum(), base.PerDatum())
			}

			// Sharded + windowed: byte-identical output, scaled Ejects,
			// per-datum invocations unchanged (one frame = one item;
			// probe and end-of-stream extras are o(1) per link).
			sh, shDig, err := RunLinearDigest(d, n, p.Items, transput.Options{Shards: P, Window: W})
			if err != nil {
				fail("%v n=%d shards=%d: %v", d, n, P, err)
				continue
			}
			if shDig != baseDig {
				fail("%v n=%d shards=%d window=%d: sink output differs from sequential", d, n, P, W)
			}
			wantEjects := n*P + 2
			if d == transput.Buffered {
				wantEjects += (n + 1) * P
			}
			if sh.Ejects != wantEjects {
				fail("%v n=%d shards=%d: %d Ejects, engine predicts %d", d, n, P, sh.Ejects, wantEjects)
			}
			wantPer := base.PerDatum()
			// End-of-stream and probe invocations are bounded by
			// window+1 per link; tolerate their amortised share.
			links := (n + 1) * P
			if d == transput.Buffered {
				links *= 2
			}
			slack := 0.1 + float64(links*(W+1))/float64(p.Items)
			if diff := math.Abs(sh.PerDatum() - wantPer); diff > slack {
				fail("%v n=%d shards=%d window=%d: %.3f inv/datum, want %.3f ± %.3f",
					d, n, P, W, sh.PerDatum(), wantPer, slack)
			}

			// Adaptive batching on top of sharding and windowing must
			// still deliver the byte-identical stream: the controller
			// changes invocation counts, never data.
			_, adDig, err := RunLinearDigest(d, n, p.Items,
				transput.Options{Shards: P, Window: W, BatchMin: 1, BatchMax: 32})
			if err != nil {
				fail("%v n=%d adaptive: %v", d, n, err)
				continue
			}
			if adDig != baseDig {
				fail("%v n=%d shards=%d window=%d adaptive: sink output differs from sequential", d, n, P, W)
			}
		}
	}
	return bad
}

// ParallelRecord is one machine-readable parallel-engine measurement.
type ParallelRecord struct {
	Discipline          string  `json:"discipline"`
	Workload            string  `json:"workload"`
	Shards              int     `json:"shards"`
	Window              int     `json:"window"`
	Items               int64   `json:"items"`
	NsPerItem           float64 `json:"ns_per_item"`
	ItemsPerSecond      float64 `json:"items_per_second"`
	Speedup             float64 `json:"speedup_vs_sequential"`
	Ejects              int     `json:"ejects"`
	InvocationsPerDatum float64 `json:"invocations_per_datum"`
	WindowDepthHW       int64   `json:"window_depth_high_water"`
	MergeReorderHW      int64   `json:"merge_reorder_high_water"`
}

// ParallelReport is the document transput-bench writes to
// BENCH_transput.json.
type ParallelReport struct {
	Items     int              `json:"items"`
	ServiceUs int              `json:"service_us"`
	WireUs    int              `json:"wire_us"`
	Records   []ParallelRecord `json:"records"`
}

// serviceBody simulates a compute-bound per-item filter by sleeping a
// fixed service time per item.  Sleeping shards overlap exactly like
// compute shards on real cores, so the engine's scaling is measurable
// on a single-core host.
func serviceBody(service time.Duration) transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		for {
			item, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			time.Sleep(service)
			if err := outs[0].Put(item); err != nil {
				return err
			}
		}
	}
}

// runParallelOnce measures one grid point.  The "service" workload is
// a 1-filter pipeline whose body costs serviceUs per item on one node;
// the "wire" workload is a 1-filter identity pipeline whose first hop
// crosses a wireUs-latency link (source on node 0, all else on 1).
func runParallelOnce(d transput.Discipline, workload string, shards, window, items, serviceUs, wireUs int) (ParallelRecord, error) {
	var (
		net  netsim.Config
		body transput.Body
		plc  func(transput.Role, int) netsim.NodeID
	)
	switch workload {
	case "service":
		net = netsim.Config{Nodes: 1}
		body = serviceBody(time.Duration(serviceUs) * time.Microsecond)
	case "wire":
		net = netsim.Config{Nodes: 2, CrossLatency: time.Duration(wireUs) * time.Microsecond}
		body = identityFilters(1)[0].Body
		plc = func(role transput.Role, _ int) netsim.NodeID {
			if role == transput.RoleSource {
				return 0
			}
			return 1
		}
	default:
		return ParallelRecord{}, fmt.Errorf("unknown workload %q", workload)
	}
	k := kernel.New(kernel.Config{Net: net})
	defer k.Shutdown()
	var count int64
	before := k.Metrics().Snapshot()
	p, err := transput.BuildPipeline(k, d, counterSource(items),
		[]transput.Filter{{Name: "work", Body: body}}, discardSink(&count),
		transput.Options{Shards: shards, Window: window, Batch: 4, Placement: plc})
	if err != nil {
		return ParallelRecord{}, err
	}
	start := time.Now()
	if err := p.Run(); err != nil {
		return ParallelRecord{}, err
	}
	elapsed := time.Since(start)
	diff := metrics.Diff(before, k.Metrics().Snapshot())
	data := diff.Get("transfer_invocations") + diff.Get("deliver_invocations")
	rec := ParallelRecord{
		Discipline:     d.String(),
		Workload:       workload,
		Shards:         shards,
		Window:         window,
		Items:          count,
		Ejects:         p.Ejects(),
		WindowDepthHW:  k.Metrics().WindowDepthHighWater.Value(),
		MergeReorderHW: k.Metrics().MergeReorderHighWater.Value(),
	}
	if count > 0 {
		rec.NsPerItem = float64(elapsed.Nanoseconds()) / float64(count)
		rec.InvocationsPerDatum = float64(data) / float64(count)
	}
	if elapsed > 0 {
		rec.ItemsPerSecond = float64(count) / elapsed.Seconds()
	}
	return rec, nil
}

// RunParallelBench sweeps the parallel engine's grid — three
// disciplines × shards {1,4} × window {1,4} — on the two workloads
// that isolate its two mechanisms: per-item service time (sharding
// overlaps it) and wire latency (the window overlaps it).  Speedups
// are relative to the same discipline and workload at shards=1,
// window=1.
func RunParallelBench(items int) (ParallelReport, error) {
	const serviceUs, wireUs = 100, 100
	rep := ParallelReport{Items: items, ServiceUs: serviceUs, WireUs: wireUs}
	for _, workload := range []string{"service", "wire"} {
		for _, d := range parallelDisciplines {
			var baseline float64
			for _, grid := range []struct{ shards, window int }{
				{1, 1}, {4, 1}, {1, 4}, {4, 4},
			} {
				rec, err := runParallelOnce(d, workload, grid.shards, grid.window, items, serviceUs, wireUs)
				if err != nil {
					return rep, fmt.Errorf("parallel bench %v/%s s=%d w=%d: %w",
						d, workload, grid.shards, grid.window, err)
				}
				if grid.shards == 1 && grid.window == 1 {
					baseline = rec.NsPerItem
				}
				if baseline > 0 && rec.NsPerItem > 0 {
					rec.Speedup = baseline / rec.NsPerItem
				}
				rep.Records = append(rep.Records, rec)
			}
		}
	}
	return rep, nil
}

// WriteParallelBenchJSON runs RunParallelBench and writes the report
// to path as indented JSON.
func WriteParallelBenchJSON(path string, items int) error {
	rep, err := RunParallelBench(items)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParallelTable renders the parallel grid as an experiment table
// (experiment id "e11" in the registry).
func ParallelTable(items int) (Table, error) {
	rep, err := RunParallelBench(items)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "E11",
		Title:   "Parallel engine — sharded stages and windowed links: items/s and speedup vs sequential",
		Columns: []string{"workload", "discipline", "shards", "window", "items/s", "speedup", "inv/datum", "ejects"},
		Notes: []string{
			fmt.Sprintf("service workload: %dµs/item filter on one node; wire workload: identity filter behind a %dµs-latency link", rep.ServiceUs, rep.WireUs),
			"per-datum invocations stay at the sequential figure: one frame is one wire item",
		},
	}
	for _, r := range rep.Records {
		t.Rows = append(t.Rows, []string{
			r.Workload,
			r.Discipline,
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%.0f", r.ItemsPerSecond),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.2f", r.InvocationsPerDatum),
			fmt.Sprintf("%d", r.Ejects),
		})
	}
	return t, nil
}
