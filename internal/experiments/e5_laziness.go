package experiments

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// E5Laziness quantifies §4's laziness discussion:
//
//	"In both cases no computation need be done until the result is
//	requested. ... A consequence of this is that the filter Ejects are
//	pure transformers: they do not also pump data.  No data flows
//	until a sink is connected to the pipeline."
//
// and its deliberate compromise:
//
//	"Laziness, however, is not desirable in a system which permits
//	parallel execution. ... Typically, each Eject in a pipeline should
//	read some input and buffer-up some output, and then suspend
//	processing pending a request for output."
//
// The experiment builds a source+filter chain with NO sink, waits,
// and records (a) how many Transfer invocations occurred — always 0
// for the lazy build, by construction of the discipline — and (b) how
// many items the source *computed* ahead, which is bounded by the
// anticipation capacity.  It then connects a sink and verifies the
// whole stream arrives.
func E5Laziness(items int) (Table, error) {
	t := Table{
		ID:    "E5",
		Title: "§4 laziness — work done before a sink is connected (read-only discipline)",
		Columns: []string{
			"mode", "transfers before sink", "items computed before sink", "bound", "items after drain",
		},
		Notes: []string{
			"'No data flows until a sink is connected': transfers-before-sink is identically 0",
			"anticipation K lets each stage run K items ahead, then suspend — laziness vs parallelism dial",
		},
	}
	type mode struct {
		name         string
		lazy         bool
		anticipation int // transput capacity semantics: -1 sync, 0 default, >0 bound
		bound        string
	}
	modes := []mode{
		{"lazy (no work at all)", true, 16, "0 until first pull"},
		{"eager, anticipation 4", false, 4, "≤ 4"},
		{"eager, anticipation 64", false, 64, "≤ 64"},
	}
	for _, m := range modes {
		k := newKernel()
		var produced atomic.Int64
		src := transput.NewROStage(k, transput.ROStageConfig{
			Name:         "source",
			Anticipation: m.anticipation,
			LazyStart:    m.lazy,
		}, func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
			for i := 0; i < items; i++ {
				if err := outs[0].Put([]byte(fmt.Sprintf("%d\n", i))); err != nil {
					return err
				}
				produced.Add(1)
			}
			return nil
		})
		srcUID := k.NewUID()
		if err := k.CreateWithUID(srcUID, src, 0); err != nil {
			k.Shutdown()
			return t, err
		}
		if !m.lazy {
			src.Start()
		}

		// Let any anticipatory computation run.
		time.Sleep(30 * time.Millisecond)
		transfersBefore := k.Metrics().TransferInvocations.Value()
		producedBefore := produced.Load()

		// Now connect the sink and drain.
		in := transput.NewInPort(k, uid.Nil, srcUID, src.Writer(0).ID(), transput.InPortConfig{Batch: 8})
		var drained int64
		for {
			_, err := in.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				k.Shutdown()
				return t, fmt.Errorf("E5 %s: %w", m.name, err)
			}
			drained++
		}
		k.Shutdown()

		t.Rows = append(t.Rows, []string{
			m.name,
			fmt.Sprintf("%d", transfersBefore),
			fmt.Sprintf("%d", producedBefore),
			m.bound,
			fmt.Sprintf("%d", drained),
		})
	}
	return t, nil
}
