package experiments

import (
	"fmt"
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// E10Fan quantifies §5's asymmetry table:
//
//	"As we have described it so far, 'read only' transput allows
//	arbitrary fan-in but no fan-out.  The dual situation exists with
//	'write only' transput. ... There is arbitrary fan-out, but no
//	fan-in.  Conventional transput allows arbitrary fan-in and
//	fan-out because both reads and writes are active."
//
// and the channel-identifier remedy: with Read qualified by a channel
// id, read-only transput regains fan-out (Figure 4's mechanism).
//
// The experiment measures four topologies at fan degree k:
//
//	read-only fan-in   : one merging Eject holds k InPorts (k sources)
//	write-only fan-out : one source Eject holds k Pushers (k sinks)
//	read-only fan-out  : one source Eject with k channels, k pullers
//	write-only fan-in  : k pushers Deliver into one (anonymous) input
//
// Each topology moves k·items data items with k data invocations per
// produced datum — the disciplines are symmetric once channels exist;
// what differs (and the table notes) is *identity*: only the side
// holding UIDs or channel ids can tell its correspondents apart.
func E10Fan(ks []int, items int) (Table, error) {
	t := Table{
		ID:      "E10",
		Title:   "§5 fan-in/fan-out — all four directions at fan degree k",
		Columns: []string{"topology", "k", "items moved", "ejects", "data inv", "distinguishable?"},
		Notes: []string{
			"read-only fan-in and write-only fan-out are native; the reverse directions need channel ids (read) or merge anonymously (write)",
		},
	}
	for _, k := range ks {
		for _, topo := range []string{"ro fan-in", "wo fan-out", "ro fan-out (channels)", "wo fan-in (anonymous)"} {
			moved, ejects, inv, distinct, err := runFan(topo, k, items)
			if err != nil {
				return t, fmt.Errorf("E10 %s k=%d: %w", topo, k, err)
			}
			t.Rows = append(t.Rows, []string{
				topo,
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", moved),
				fmt.Sprintf("%d", ejects),
				fmt.Sprintf("%d", inv),
				distinct,
			})
		}
	}
	return t, nil
}

func runFan(topo string, k, items int) (moved, ejects, inv int64, distinct string, err error) {
	kn := newKernel()
	defer kn.Shutdown()
	before := kn.Metrics().Snapshot()

	switch topo {
	case "ro fan-in":
		moved, err = roFanIn(kn, k, items)
		distinct = "yes (k UIDs held by the reader)"
	case "wo fan-out":
		moved, err = woFanOut(kn, k, items)
		distinct = "yes (k UIDs held by the writer)"
	case "ro fan-out (channels)":
		moved, err = roFanOut(kn, k, items)
		distinct = "yes (k channel ids)"
	case "wo fan-in (anonymous)":
		moved, err = woFanIn(kn, k, items)
		distinct = "no (writers merge)"
	default:
		err = fmt.Errorf("unknown topology %q", topo)
	}
	if err != nil {
		return
	}
	diff := metrics.Diff(before, kn.Metrics().Snapshot())
	ejects = diff.Get("ejects_created")
	inv = diff.Get("transfer_invocations") + diff.Get("deliver_invocations")
	return
}

// roFanIn: k source Ejects, one external merger pulling all of them.
func roFanIn(kn *kernel.Kernel, k, items int) (int64, error) {
	var ins []*transput.InPort
	for i := 0; i < k; i++ {
		st := transput.NewROStage(kn, transput.ROStageConfig{Name: fmt.Sprintf("src%d", i)},
			emitN(items))
		id := kn.NewUID()
		if err := kn.CreateWithUID(id, st, 0); err != nil {
			return 0, err
		}
		st.Start()
		ins = append(ins, transput.NewInPort(kn, uid.Nil, id, transput.Chan(0), transput.InPortConfig{Batch: 4}))
	}
	// The merging sink is itself an Eject holding k UIDs (§5: "if F
	// needs n inputs, it maintains n UIDs").
	readers := make([]transput.ItemReader, len(ins))
	for i, in := range ins {
		readers[i] = in
	}
	var moved int64
	sink := transput.NewSinkEject("merger", func(rs []transput.ItemReader) error {
		for _, r := range rs {
			n, err := transput.Drain(r)
			if err != nil {
				return err
			}
			moved += int64(n)
		}
		return nil
	}, readers...)
	sinkID := kn.NewUID()
	if err := kn.CreateWithUID(sinkID, sink, 0); err != nil {
		return 0, err
	}
	sink.Start()
	<-sink.Done()
	return moved, sink.Err()
}

// woFanOut: one source Eject pushing duplicate streams at k sink
// Ejects.
func woFanOut(kn *kernel.Kernel, k, items int) (int64, error) {
	var moved int64
	var mu sync.Mutex
	var sinks []*transput.WOStage
	var pushers []transput.ItemWriter
	srcID := kn.NewUID()
	for i := 0; i < k; i++ {
		st := transput.NewWOStage(kn, transput.WOStageConfig{Name: fmt.Sprintf("sink%d", i)},
			func(ins []transput.ItemReader, _ []transput.ItemWriter) error {
				n, err := transput.Drain(ins[0])
				mu.Lock()
				moved += int64(n)
				mu.Unlock()
				return err
			})
		id := kn.NewUID()
		if err := kn.CreateWithUID(id, st, 0); err != nil {
			return 0, err
		}
		st.Start()
		sinks = append(sinks, st)
		pushers = append(pushers, transput.NewPusher(kn, srcID, id, transput.Chan(0), transput.PusherConfig{Batch: 4}))
	}
	src := transput.NewConvStage("fanout-source", func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
		return emitN(items)(nil, outs[:1])
	}, nil, []transput.ItemWriter{transput.NewMultiWriter(pushers...)})
	if err := kn.CreateWithUID(srcID, src, 0); err != nil {
		return 0, err
	}
	src.Start()
	for _, st := range sinks {
		<-st.Done()
		if err := st.Err(); err != nil {
			return 0, err
		}
	}
	return moved, nil
}

// roFanOut: one source Eject with k output channels; k external
// pullers, one per channel id (Figure 4's mechanism).
func roFanOut(kn *kernel.Kernel, k, items int) (int64, error) {
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("Out%d", i)
	}
	st := transput.NewROStage(kn, transput.ROStageConfig{Name: "fanout-src", OutNames: names},
		func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
			for i := 0; i < items; i++ {
				for _, out := range outs {
					if err := out.Put([]byte(fmt.Sprintf("%d\n", i))); err != nil {
						return err
					}
				}
			}
			return nil
		})
	id := kn.NewUID()
	if err := kn.CreateWithUID(id, st, 0); err != nil {
		return 0, err
	}
	st.Start()
	var moved int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			in := transput.NewInPort(kn, uid.Nil, id, transput.Chan(transput.ChannelNum(ch)), transput.InPortConfig{Batch: 4})
			n, err := transput.Drain(in)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			moved += int64(n)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	return moved, nil
}

// woFanIn: k anonymous pushers Deliver into one sink channel.
func woFanIn(kn *kernel.Kernel, k, items int) (int64, error) {
	var moved int64
	st := transput.NewWOStage(kn, transput.WOStageConfig{Name: "fanin-sink", Writers: []int{k}},
		func(ins []transput.ItemReader, _ []transput.ItemWriter) error {
			n, err := transput.Drain(ins[0])
			moved = int64(n)
			return err
		})
	sinkID := kn.NewUID()
	if err := kn.CreateWithUID(sinkID, st, 0); err != nil {
		return 0, err
	}
	st.Start()
	var wg sync.WaitGroup
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		srcID := kn.NewUID()
		push := transput.NewPusher(kn, srcID, sinkID, transput.Chan(0), transput.PusherConfig{Batch: 4})
		src := transput.NewConvStage(fmt.Sprintf("pushsrc%d", i),
			func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
				return emitN(items)(nil, outs)
			}, nil, []transput.ItemWriter{push})
		if err := kn.CreateWithUID(srcID, src, 0); err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(s *transput.ConvStage) {
			defer wg.Done()
			s.Start()
			if err := s.Err(); err != nil {
				errs <- err
			}
		}(src)
	}
	wg.Wait()
	<-st.Done()
	close(errs)
	for err := range errs {
		return 0, err
	}
	return moved, st.Err()
}

// emitN writes items numbered lines to outs[0].
func emitN(items int) transput.Body {
	return func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
		for i := 0; i < items; i++ {
			if err := outs[0].Put([]byte(fmt.Sprintf("%d\n", i))); err != nil {
				return err
			}
		}
		return nil
	}
}
