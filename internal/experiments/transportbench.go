// E14: the real-wire transput grid.  Everything E2–E4 measure on the
// simulated network re-runs here on actual kernel sockets — Unix
// domain and TCP loopback — via internal/transport: same ports, same
// credit protocol, same slab data plane, with the frames now crossing
// a real file descriptor through the per-direction write coalescer.
//
// The grid answers three questions the simulator cannot:
//
//   - what a cross-node hop costs on a real wire (echo round-trips,
//     UDS in the low microseconds, TCP loopback roughly an order of
//     magnitude above netsim);
//   - whether syscall-amortized framing keeps pipeline throughput
//     within reach of the in-process simulator (the coalescer batches
//     every multiplexed channel's frames into single vectored writes);
//   - whether the reproduction's invariants survive the wire: sink
//     digests byte-identical to netsim, the paper's invocation counts
//     at batch 1, and SlabLeaked == 0 after the leak audit — including
//     under early abort.
package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"asymstream/internal/filters"
	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// transportSweep is the link sweep every E14 section runs: the netsim
// baseline first, then the two real wires.
var transportSweep = []transput.Transport{
	transput.TransportNetsim, transput.TransportUnix, transput.TransportTCP,
}

// newTransportKernel builds a 2-node kernel on the given link, with
// payload encoding on for netsim so its wire accounting matches what
// the socket links do for real.
func newTransportKernel(tr transput.Transport) (*kernel.Kernel, error) {
	return transput.NewTransportKernel(kernel.Config{
		Net: netsim.Config{Nodes: 2, EncodePayloads: true},
	}, tr)
}

// HopResult is one echo-latency measurement (echoEject, shared with
// E9, answers each invocation with its own payload: two wire crossings
// per Invoke).
type HopResult struct {
	Transport string  `json:"transport"`
	Hops      int     `json:"hops"`
	NsPerHop  float64 `json:"ns_per_hop"`
}

// RunTransportHops measures the per-hop cost of a cross-node
// invocation on tr: rounds echo round-trips from node 0 to an Eject on
// node 1, each one request hop plus one reply hop.
func RunTransportHops(tr transput.Transport, rounds int) (HopResult, error) {
	res := HopResult{Transport: string(tr), Hops: 2 * rounds}
	k, err := newTransportKernel(tr)
	if err != nil {
		return res, err
	}
	defer k.Shutdown()
	id, err := k.Create(echoEject{}, 1)
	if err != nil {
		return res, err
	}
	// Warm the link (lazy goroutine start, pools, route caches).
	for i := 0; i < 16; i++ {
		if _, err := k.Invoke(uid.Nil, id, transput.OpChannels, nil); err != nil {
			return res, err
		}
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := k.Invoke(uid.Nil, id, transput.OpChannels, nil); err != nil {
			return res, err
		}
	}
	elapsed := time.Since(start)
	res.NsPerHop = float64(elapsed.Nanoseconds()) / float64(2*rounds)
	return res, nil
}

// TransportRunResult is one pipeline run over a given link.
type TransportRunResult struct {
	LinearResult
	Transport  string
	Digest     string
	WireBytes  int64
	SlabLeaked int64
}

// RunTransportLinear runs one linear pipeline spread over the 2-node
// kernel's link: source on node 0, filters and sink on node 1, so
// every Transfer/Deliver exchange crosses the wire.  The sink digests
// its items (length-prefixed sha256), which is what lets VerifyTransport
// demand byte equality across transports.  SlabLeaked is read after
// the kernel's shutdown leak audit, so it covers the link's read slabs.
func RunTransportLinear(tr transput.Transport, d transput.Discipline, n, items int, opt transput.Options) (TransportRunResult, error) {
	res := TransportRunResult{Transport: string(tr)}
	k, err := newTransportKernel(tr)
	if err != nil {
		return res, err
	}
	shut := k.Shutdown
	defer func() {
		if shut != nil {
			shut()
		}
	}()

	opt.Transport = tr
	opt.Placement = crossNodePlacement(2)

	var count int64
	h := sha256.New()
	sink := func(in transput.ItemReader) error {
		var lenbuf [8]byte
		for {
			item, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			binary.BigEndian.PutUint64(lenbuf[:], uint64(len(item)))
			h.Write(lenbuf[:])
			h.Write(item)
			count++
		}
	}
	before := k.Metrics().Snapshot()
	p, err := transput.BuildPipeline(k, d, counterSource(items), identityFilters(n), sink, opt)
	if err != nil {
		return res, err
	}
	start := time.Now()
	if err := p.Run(); err != nil {
		return res, err
	}
	elapsed := time.Since(start)
	diff := metrics.Diff(before, k.Metrics().Snapshot())
	p.Destroy()
	// Shutdown closes the link, which closes its read slabs and charges
	// any still-outstanding view to SlabLeaked — the audit E14 reports.
	k.Shutdown()
	shut = nil

	res.LinearResult = LinearResult{
		Discipline:       d,
		Filters:          n,
		Items:            count,
		Ejects:           p.Ejects(),
		DataInvocations:  diff.Get("transfer_invocations") + diff.Get("deliver_invocations"),
		TotalInvocations: diff.Get("invocations"),
		ProcessSwitches:  diff.Get("process_switches"),
		BytesMoved:       diff.Get("bytes_moved"),
		Elapsed:          elapsed,
	}
	res.Digest = hex.EncodeToString(h.Sum(nil))
	res.WireBytes = diff.Get("wire_bytes")
	res.SlabLeaked = k.Metrics().SlabLeaked.Value()
	return res, nil
}

// TransportPipelineReport is one grid row of BENCH_transport.json.
type TransportPipelineReport struct {
	Transport   string  `json:"transport"`
	Discipline  string  `json:"discipline"`
	Filters     int     `json:"filters"`
	Items       int64   `json:"items"`
	InvPerDatum float64 `json:"inv_per_datum"`
	ItemsPerSec float64 `json:"items_per_sec"`
	WireBytes   int64   `json:"wire_bytes"`
	SlabLeaked  int64   `json:"slab_leaked"`
	Digest      string  `json:"digest"`
}

// TransportReport is the document transput-bench -json writes to
// BENCH_transport.json: echo hop costs plus the pipeline grid, for
// netsim, Unix-domain and TCP-loopback links.
type TransportReport struct {
	Rounds    int                       `json:"echo_rounds"`
	Items     int                       `json:"items"`
	Hops      []HopResult               `json:"hops"`
	Pipelines []TransportPipelineReport `json:"pipelines"`
}

// RunTransportGrid produces the full E14 measurement set.  The
// throughput rows run the adaptive data plane (the coalescer's batch
// amortization is the point); items is per run.
func RunTransportGrid(rounds, items int) (TransportReport, error) {
	rep := TransportReport{Rounds: rounds, Items: items}
	for _, tr := range transportSweep {
		hop, err := RunTransportHops(tr, rounds)
		if err != nil {
			return rep, fmt.Errorf("hops %s: %v", tr, err)
		}
		rep.Hops = append(rep.Hops, hop)
	}
	for _, tr := range transportSweep {
		for _, n := range []int{1, 2} {
			// Adaptive batching with read-ahead: over a real wire the
			// per-invocation round trip is the cost to hide, so the
			// throughput rows let the AIMD controller grow batches and
			// keep one batch in flight (the same knobs BENCH_kernel's
			// adaptive rows use).
			opt := transput.Options{BatchMin: 1, BatchMax: 64, Prefetch: 2}
			r, err := RunTransportLinear(tr, transput.ReadOnly, n, items, opt)
			if err != nil {
				return rep, fmt.Errorf("pipeline %s n=%d: %v", tr, n, err)
			}
			rep.Pipelines = append(rep.Pipelines, TransportPipelineReport{
				Transport:   string(tr),
				Discipline:  r.Discipline.String(),
				Filters:     n,
				Items:       r.Items,
				InvPerDatum: r.PerDatum(),
				ItemsPerSec: r.Throughput(),
				WireBytes:   r.WireBytes,
				SlabLeaked:  r.SlabLeaked,
				Digest:      r.Digest,
			})
		}
	}
	return rep, nil
}

// WriteTransportBenchJSON runs the transport grid and writes the
// report to path as indented JSON.
func WriteTransportBenchJSON(path string, rounds, items int) error {
	rep, err := RunTransportGrid(rounds, items)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// E14Transport renders the transport grid as an experiment table.
func E14Transport(p Params) (Table, error) {
	rounds, items := 2000, p.Items
	if p.Items <= 300 { // quick profile
		rounds = 300
	}
	t := Table{
		ID:      "E14",
		Title:   "real-wire transput — netsim vs Unix-domain vs TCP loopback",
		Columns: []string{"transport", "figure", "value"},
		Notes: []string{
			"per-direction write coalescer: one vectored write per flush, frames multiplexed across channels",
			"read side decodes frames in place from slab chunks; items cross to ports as ownership-transferred sub-views",
			fmt.Sprintf("%d echo rounds (2 hops each); pipelines run %d items, source on node 0, rest on node 1", rounds, items),
		},
	}
	rep, err := RunTransportGrid(rounds, items)
	if err != nil {
		return t, err
	}
	for _, h := range rep.Hops {
		t.Rows = append(t.Rows, []string{h.Transport, "invoke latency",
			fmt.Sprintf("%.1f µs/hop", h.NsPerHop/1e3)})
	}
	for _, r := range rep.Pipelines {
		t.Rows = append(t.Rows, []string{r.Transport,
			fmt.Sprintf("%s n=%d", r.Discipline, r.Filters),
			fmt.Sprintf("%.0f items/s, %.2f inv/datum, %d wire B, leaked %d",
				r.ItemsPerSec, r.InvPerDatum, r.WireBytes, r.SlabLeaked)})
	}
	return t, nil
}

// VerifyTransport re-derives the reproduction's invariants across a
// real wire: for each discipline, the sink digest over UDS and TCP is
// byte-identical to netsim's; pinned to the paper's accounting
// (BatchMin = BatchMax = 1) the invocation counts match the formulas;
// the slab leak audit stays at zero, including when a Head filter
// aborts the stream early.  Timing claims (hop latency, throughput
// ratios) are deliberately not asserted here — they belong in
// BENCH_transport.json, not a correctness gate.
func VerifyTransport(p Params) []string {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	items := p.Items
	if items > 500 {
		items = 500 // 3 transports × 3 disciplines; keep the gate fast
	}
	const n = 2
	pinned := transput.Options{BatchMin: 1, BatchMax: 1}

	for _, d := range []transput.Discipline{transput.ReadOnly, transput.WriteOnly, transput.Buffered} {
		want := ""
		for _, tr := range transportSweep {
			r, err := RunTransportLinear(tr, d, n, items, pinned)
			if err != nil {
				fail("transport %s %s: %v", tr, d, err)
				continue
			}
			if r.Items != int64(items) {
				fail("transport %s %s: %d items reached the sink, want %d", tr, d, r.Items, items)
			}
			if want == "" {
				want = r.Digest
			} else if r.Digest != want {
				fail("transport %s %s: sink digest differs from netsim's (wire corrupted the stream)", tr, d)
			}
			if r.SlabLeaked != 0 {
				fail("transport %s %s: SlabLeaked = %d after shutdown", tr, d, r.SlabLeaked)
			}
			// The paper's counting claims, unchanged by the wire.
			switch d {
			case transput.ReadOnly:
				if r.Ejects != n+2 {
					fail("transport %s read-only: %d Ejects, paper predicts %d", tr, r.Ejects, n+2)
				}
				if diff := r.PerDatum() - float64(n+1); diff > 0.2 || diff < -0.2 {
					fail("transport %s read-only: %.3f inv/datum, paper predicts %d", tr, r.PerDatum(), n+1)
				}
			case transput.Buffered:
				if diff := r.PerDatum() - float64(2*n+2); diff > 0.4 || diff < -0.4 {
					fail("transport %s buffered: %.3f inv/datum, paper predicts %d", tr, r.PerDatum(), 2*n+2)
				}
			}
		}
	}

	// Early abort across the wire: Head(k) cancels upstream mid-stream;
	// the in-flight frames' views must still all be released.
	for _, tr := range transportSweep {
		res, err := runTransportAbort(tr, items)
		if err != nil {
			fail("transport %s abort: %v", tr, err)
			continue
		}
		if res != 0 {
			fail("transport %s abort: SlabLeaked = %d after early cancel", tr, res)
		}
	}
	return bad
}

// runTransportAbort runs a pipeline whose Head filter stops the stream
// after a fraction of the items, returning the post-shutdown leak
// count.
func runTransportAbort(tr transput.Transport, items int) (int64, error) {
	k, err := newTransportKernel(tr)
	if err != nil {
		return 0, err
	}
	opt := transput.Options{Transport: tr, Placement: crossNodePlacement(2)}
	var count int64
	fs := []transput.Filter{{Name: "head", Body: filters.Head(items / 10)}}
	p, err := transput.BuildPipeline(k, transput.ReadOnly, counterSource(items), fs, discardSink(&count), opt)
	if err != nil {
		k.Shutdown()
		return 0, err
	}
	if err := p.Run(); err != nil {
		k.Shutdown()
		return 0, err
	}
	p.Destroy()
	k.Shutdown()
	return k.Metrics().SlabLeaked.Value(), nil
}
