package experiments

import (
	"fmt"
	"math"

	"asymstream/internal/transput"
)

// Verify re-derives the paper's counting claims from live runs and
// returns a list of violations (empty = the reproduction holds).  It
// is the regression gate behind `transput-bench -check`: the same
// assertions the test suite makes, available from the built binary so
// a deployment can self-validate.
func Verify(p Params) []string {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	for _, n := range p.Ns {
		// Figure 2: n+1 invocations per datum, n+2 Ejects.
		ro, err := RunLinear(transput.ReadOnly, n, p.Items, transput.Options{})
		if err != nil {
			fail("read-only n=%d: %v", n, err)
			continue
		}
		if ro.Ejects != n+2 {
			fail("read-only n=%d: %d Ejects, paper predicts %d", n, ro.Ejects, n+2)
		}
		if d := math.Abs(ro.PerDatum() - float64(n+1)); d > 0.2 {
			fail("read-only n=%d: %.3f inv/datum, paper predicts %d", n, ro.PerDatum(), n+1)
		}

		// The adaptive data plane pinned to the paper's accounting
		// (BatchMin = BatchMax = 1) must reproduce the same figure:
		// the AIMD controller changes how many invocations carry the
		// stream, never what the batch-1 model predicts.
		pin, err := RunLinear(transput.ReadOnly, n, p.Items,
			transput.Options{BatchMin: 1, BatchMax: 1})
		if err != nil {
			fail("pinned read-only n=%d: %v", n, err)
			continue
		}
		if d := math.Abs(pin.PerDatum() - float64(n+1)); d > 0.2 {
			fail("pinned read-only n=%d: %.3f inv/datum, paper predicts %d (adaptive controller at batch 1)",
				n, pin.PerDatum(), n+1)
		}

		// §4 baseline: 2n+2 and 2n+3.
		bu, err := RunLinear(transput.Buffered, n, p.Items, transput.Options{})
		if err != nil {
			fail("buffered n=%d: %v", n, err)
			continue
		}
		if bu.Ejects != 2*n+3 {
			fail("buffered n=%d: %d Ejects, paper predicts %d", n, bu.Ejects, 2*n+3)
		}
		if d := math.Abs(bu.PerDatum() - float64(2*n+2)); d > 0.4 {
			fail("buffered n=%d: %.3f inv/datum, paper predicts %d", n, bu.PerDatum(), 2*n+2)
		}

		// "Roughly half as many invocations".
		if ratio := bu.PerDatum() / ro.PerDatum(); ratio < 1.8 || ratio > 2.2 {
			fail("n=%d: invocation ratio %.2f, paper predicts ≈2", n, ratio)
		}

		// §5 duality.
		wo, err := RunLinear(transput.WriteOnly, n, p.Items, transput.Options{})
		if err != nil {
			fail("write-only n=%d: %v", n, err)
			continue
		}
		if d := math.Abs(wo.PerDatum() - ro.PerDatum()); d > 0.3 {
			fail("n=%d: duality broken (wo %.2f vs ro %.2f inv/datum)", n, wo.PerDatum(), ro.PerDatum())
		}

		// Figure 1: 2n+2 syscalls per datum, n+1 pipes, n+2 processes.
		ux, pipes, procs, err := RunUnix(n, p.Items, 64)
		if err != nil {
			fail("unix n=%d: %v", n, err)
			continue
		}
		if pipes != n+1 || procs != n+2 {
			fail("unix n=%d: %d pipes / %d processes, paper predicts %d / %d", n, pipes, procs, n+1, n+2)
		}
		per := float64(ux.DataInvocations-int64(2*(n+1))) / float64(ux.Items)
		if d := math.Abs(per - float64(2*n+2)); d > 0.2 {
			fail("unix n=%d: %.3f syscalls/datum, paper predicts %d", n, per, 2*n+2)
		}
	}

	// Parallel engine: sharded and windowed pipelines keep the sink
	// output byte-identical and the per-datum counts at the paper's
	// figures, with Ejects scaling to n·P+2.
	bad = append(bad, VerifyParallel(p)...)

	// Fusion compiler: fused pipelines are byte-identical, collapse to
	// 2 Ejects / ~1 inv per datum when fully co-located, and fusion off
	// reproduces the paper's exact counts.
	bad = append(bad, VerifyFusion(p)...)

	// Real wire: over Unix-domain and TCP sockets the sink digests stay
	// byte-identical to netsim's, the paper's counts hold at batch 1,
	// and the slab leak audit stays clean — including under abort.
	bad = append(bad, VerifyTransport(p)...)
	return bad
}
