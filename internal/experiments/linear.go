package experiments

import (
	"fmt"

	"asymstream/internal/transput"
)

// Default sweep parameters, chosen so the tables are stable at test
// speed yet show the asymptotics.
var (
	// SweepN is the pipeline-length sweep used by E1–E4.
	SweepN = []int{1, 2, 4, 8, 16}
	// SweepItems is the per-run stream length for counting
	// experiments.
	SweepItems = 2000
)

// E1UnixPipeline reproduces Figure 1: a conventional Unix pipeline of
// n filters costs 2n+2 system calls per datum, n+1 kernel pipes and
// n+2 processes.
func E1UnixPipeline(ns []int, items int) (Table, error) {
	t := Table{
		ID:      "E1",
		Title:   "Figure 1 — Unix pipeline: syscalls per datum (predicted 2n+2), pipes (n+1), processes (n+2)",
		Columns: []string{"n", "items", "syscalls/datum", "predicted", "pipes", "processes", "items/s"},
		Notes: []string{
			"syscalls counted: read(2)/write(2) on pipes; close(2) excluded from the per-datum rate (o(1) per run)",
		},
	}
	for _, n := range ns {
		res, pipes, procs, err := RunUnix(n, items, 64)
		if err != nil {
			return t, fmt.Errorf("E1 n=%d: %w", n, err)
		}
		// Subtract the constant close() calls — each pipe's write and
		// read ends are closed once per run (2(n+1) closes) — so the
		// per-datum figure is what the paper's formula predicts.
		sys := res.DataInvocations - int64(2*(n+1))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Items),
			fmt.Sprintf("%.3f", float64(sys)/float64(res.Items)),
			fmt.Sprintf("%d", 2*n+2),
			fmt.Sprintf("%d", pipes),
			fmt.Sprintf("%d", procs),
			fmt.Sprintf("%.0f", res.Throughput()),
		})
	}
	return t, nil
}

// E2ReadOnly reproduces Figure 2: the read-only Eden pipeline needs
// n+1 Transfer invocations per datum and n+2 Ejects — and no passive
// buffers at all.
func E2ReadOnly(ns []int, items int) (Table, error) {
	return linearTable("E2",
		"Figure 2 — read-only Eden pipeline: Transfer invocations per datum (predicted n+1), Ejects (n+2)",
		transput.ReadOnly, ns, items,
		func(n int) (float64, int) { return float64(n + 1), n + 2 })
}

// E3Buffered reproduces the §4 baseline: the conventional discipline
// inside Eden needs 2n+2 data invocations per datum and 2n+3 Ejects
// (n+1 of them passive buffers) — "roughly half as many invocations"
// saved by read-only transput.
func E3Buffered(ns []int, items int) (Table, error) {
	t, err := linearTable("E3",
		"§4 baseline — buffered Eden pipeline: data invocations per datum (predicted 2n+2), Ejects (2n+3)",
		transput.Buffered, ns, items,
		func(n int) (float64, int) { return float64(2*n + 2), 2*n + 3 })
	if err == nil {
		t.Notes = append(t.Notes,
			"ratio vs E2 at equal n ≈ 2: the paper's 'roughly half as many invocations'")
	}
	return t, err
}

// E4WriteOnly verifies the §5 duality: the write-only pipeline has
// exactly the read-only counts, with Deliver in place of Transfer.
func E4WriteOnly(ns []int, items int) (Table, error) {
	return linearTable("E4",
		"§5 dual — write-only Eden pipeline: Deliver invocations per datum (predicted n+1), Ejects (n+2)",
		transput.WriteOnly, ns, items,
		func(n int) (float64, int) { return float64(n + 1), n + 2 })
}

func linearTable(id, title string, d transput.Discipline, ns []int, items int,
	predict func(n int) (float64, int)) (Table, error) {
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"n", "items", "inv/datum", "predicted", "ejects", "pred. ejects", "switches/datum", "items/s"},
	}
	for _, n := range ns {
		res, err := RunLinear(d, n, items, transput.Options{})
		if err != nil {
			return t, fmt.Errorf("%s n=%d: %w", id, n, err)
		}
		predInv, predEj := predict(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Items),
			fmt.Sprintf("%.3f", res.PerDatum()),
			fmt.Sprintf("%.0f", predInv),
			fmt.Sprintf("%d", res.Ejects),
			fmt.Sprintf("%d", predEj),
			fmt.Sprintf("%.2f", float64(res.ProcessSwitches)/float64(res.Items)),
			fmt.Sprintf("%.0f", res.Throughput()),
		})
	}
	return t, nil
}

// SummaryRatio builds the headline comparison: read-only vs buffered
// invocations and Ejects at each n — the paper's central claim in one
// table.
func SummaryRatio(ns []int, items int) (Table, error) {
	t := Table{
		ID:      "E2/E3",
		Title:   "Headline — asymmetric vs conventional: invocation and Eject ratios",
		Columns: []string{"n", "ro inv/datum", "buf inv/datum", "ratio", "ro ejects", "buf ejects", "eject ratio"},
		Notes: []string{
			"paper: 'roughly half as many invocations are required' and n+2 vs 2n+3 Ejects",
		},
	}
	for _, n := range ns {
		ro, err := RunLinear(transput.ReadOnly, n, items, transput.Options{})
		if err != nil {
			return t, err
		}
		bu, err := RunLinear(transput.Buffered, n, items, transput.Options{})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", ro.PerDatum()),
			fmt.Sprintf("%.2f", bu.PerDatum()),
			fmt.Sprintf("%.2f", bu.PerDatum()/ro.PerDatum()),
			fmt.Sprintf("%d", ro.Ejects),
			fmt.Sprintf("%d", bu.Ejects),
			fmt.Sprintf("%.2f", float64(bu.Ejects)/float64(ro.Ejects)),
		})
	}
	return t, nil
}
