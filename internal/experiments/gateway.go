package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// The ingress-gateway workload (E13) is the control-plane stress test
// the million-channel refactor was built for: one write-only ingest
// front door and one read-only egress, each carrying a very large
// population of capability-addressed channels of which only a small
// working set is hot at any instant.  It exercises exactly the three
// structures PR 7 introduced — the striped channel tables (admission
// storms), the pooled alloc-free channel records (churn), and the
// capability-check cache (steady-state lookups) — and reports the
// figures the design advertises: channels/sec admitted, bytes per
// idle channel, steady-state items/sec, capability-cache hit rate,
// lookup contention, and churn cycles/sec with zero slab leaks.

// gatewayIngress is the front door: a single Eject whose WOInPort
// carries one passive-input channel per tenant stream.  Producers
// Deliver into their capability channel; the gateway's pump reads the
// stream locally and forwards it to the egress side.
type gatewayIngress struct {
	port *transput.WOInPort
}

func (g *gatewayIngress) EdenType() string { return "experiments.gatewayIngress" }

func (g *gatewayIngress) Serve(inv *kernel.Invocation) {
	if !g.port.Serve(inv) {
		inv.Fail(kernel.ErrNoSuchOperation)
	}
}

// gatewayEgress is the read-only back door: one OutPort channel per
// tenant stream, drained by subscriber InPorts via Transfer.
type gatewayEgress struct {
	port *transput.OutPort
}

func (g *gatewayEgress) EdenType() string { return "experiments.gatewayEgress" }

func (g *gatewayEgress) Serve(inv *kernel.Invocation) {
	if !g.port.Serve(inv) {
		inv.Fail(kernel.ErrNoSuchOperation)
	}
}

// GatewayReport is the document transput-bench -json writes to
// BENCH_gateway.json.  All figures come from one process-local run;
// ChannelsTotal counts both sides (ingest + egress).
type GatewayReport struct {
	ChannelPairs  int `json:"channel_pairs"`
	ChannelsTotal int `json:"channels_total"`
	HotPairs      int `json:"hot_pairs"`
	ItemsPerHot   int `json:"items_per_hot_pair"`

	// Admission: declaring every channel on both ports, timed cold.
	AdmitChannelsPerSec float64 `json:"admit_channels_per_sec"`
	AdmitNsPerChannel   float64 `json:"admit_ns_per_channel"`

	// Idle footprint: measured heap growth across admission, and the
	// engine's own IdleChannelBytes gauge, both divided by the
	// channel population.
	HeapBytesPerIdleChannel  float64 `json:"heap_bytes_per_idle_channel"`
	GaugeBytesPerIdleChannel float64 `json:"gauge_bytes_per_idle_channel"`

	// Steady state: hot pairs streaming end to end (Deliver in,
	// Transfer out) while the idle population sits in the tables.
	SteadyItemsPerSec   float64 `json:"steady_items_per_sec"`
	SteadyAllocsPerItem float64 `json:"steady_allocs_per_item"`
	CapCacheHits        int64   `json:"cap_cache_hits"`
	CapCacheMisses      int64   `json:"cap_cache_misses"`
	CapCacheHitRate     float64 `json:"cap_cache_hit_rate"`
	LookupContention    int64   `json:"lookup_contention"`

	// Churn: retire + re-admit cycles over a window of idle channels.
	ChurnChannelsPerSec float64 `json:"churn_channels_per_sec"`
	ChurnAllocsPerCycle float64 `json:"churn_allocs_per_cycle"`
	SlabLeaked          int64   `json:"slab_leaked"`
	ChannelsLiveEnd     int64   `json:"channels_live_end"`
}

// heapBytes settles the collector and returns live heap bytes, so two
// readings bracket a phase's resident growth.
func heapBytes() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// RunGateway builds the gateway pair, admits `pairs` capability
// channel pairs, streams `items` items through each of `hot` pairs,
// then churns a window of idle channels.  The per-channel buffer is
// kept small (8 items) because the population, not the depth, is what
// this workload measures.
func RunGateway(pairs, hot, items int) (GatewayReport, error) {
	rep := GatewayReport{
		ChannelPairs:  pairs,
		ChannelsTotal: 2 * pairs,
		HotPairs:      hot,
		ItemsPerHot:   items,
	}
	if hot > pairs {
		hot = pairs
		rep.HotPairs = hot
	}
	const chanCap = 8

	// Parked workers are the back-pressure mechanism: every hot sink
	// can hold one Transfer withheld on an empty channel and every hot
	// producer one Deliver withheld on a full one, so the pools must
	// exceed the hot set or the gateway livelocks on pool starvation.
	k := kernel.New(kernel.Config{WorkersPerEject: hot + 8})
	defer k.Shutdown()
	met := k.Metrics()

	ing := &gatewayIngress{port: transput.NewWOInPort(k, transput.WOInPortConfig{
		Capacity:       chanCap,
		CapabilityMode: true,
	})}
	eg := &gatewayEgress{port: transput.NewOutPort(k, transput.OutPortConfig{
		Capacity:       chanCap,
		CapabilityMode: true,
	})}
	ingUID, err := k.Create(ing, 0)
	if err != nil {
		return rep, fmt.Errorf("gateway ingress: %w", err)
	}
	egUID, err := k.Create(eg, 0)
	if err != nil {
		return rep, fmt.Errorf("gateway egress: %w", err)
	}

	// --- Phase 1: admission storm ---------------------------------
	readers := make([]*transput.ChannelReader, pairs)
	writers := make([]*transput.ChannelWriter, pairs)
	heapBefore := heapBytes()
	start := time.Now()
	for i := 0; i < pairs; i++ {
		readers[i] = ing.port.Declare("in", transput.ChannelNum(i), chanCap, 1)
		writers[i] = eg.port.Declare("out", transput.ChannelNum(i), chanCap)
	}
	admitElapsed := time.Since(start)
	heapAfter := heapBytes()

	total := float64(2 * pairs)
	rep.AdmitChannelsPerSec = total / admitElapsed.Seconds()
	rep.AdmitNsPerChannel = float64(admitElapsed.Nanoseconds()) / total
	rep.HeapBytesPerIdleChannel = float64(heapAfter-heapBefore) / total
	rep.GaugeBytesPerIdleChannel = float64(met.IdleChannelBytes.Value()) / total

	// --- Phase 2: steady state over the hot set -------------------
	hitsBefore := met.CapabilityCacheHits.Value()
	missBefore := met.CapabilityCacheMisses.Value()
	payload := []byte("gateway item payload 0123456789abcdef\n")

	var moved atomic.Int64
	errCh := make(chan error, 3*hot)
	var wg sync.WaitGroup
	allocsBefore := mallocs()
	start = time.Now()
	for j := 0; j < hot; j++ {
		r, w := readers[j], writers[j]

		// Pump: the gateway's own thread of control, forwarding the
		// ingest stream to the egress channel with ownership handoff
		// (no copy between the two ports).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				item, err := r.Next()
				if err == io.EOF {
					_ = w.Close()
					return
				}
				if err != nil {
					_ = w.CloseWithError(err)
					return
				}
				if err := w.PutOwned(item); err != nil {
					errCh <- fmt.Errorf("gateway pump: %w", err)
					return
				}
			}
		}()

		// Producer: an external writer pushing at the front door.
		wg.Add(1)
		go func(ch transput.ChannelID) {
			defer wg.Done()
			p := transput.NewPusher(k, uid.Nil, ingUID, ch, transput.PusherConfig{Batch: 16})
			for n := 0; n < items; n++ {
				if err := p.Put(payload); err != nil {
					errCh <- fmt.Errorf("gateway producer: %w", err)
					return
				}
			}
			if err := p.Close(); err != nil {
				errCh <- fmt.Errorf("gateway producer close: %w", err)
			}
		}(r.ID())

		// Subscriber: an external reader pulling at the back door.
		wg.Add(1)
		go func(ch transput.ChannelID) {
			defer wg.Done()
			in := transput.NewInPort(k, uid.Nil, egUID, ch, transput.InPortConfig{Batch: 16})
			for {
				_, err := in.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					errCh <- fmt.Errorf("gateway subscriber: %w", err)
					return
				}
				moved.Add(1)
			}
		}(w.ID())
	}
	wg.Wait()
	steadyElapsed := time.Since(start)
	steadyAllocs := mallocs() - allocsBefore
	select {
	case err := <-errCh:
		return rep, err
	default:
	}
	if got, want := moved.Load(), int64(hot)*int64(items); got != want {
		return rep, fmt.Errorf("gateway moved %d items end to end, want %d", got, want)
	}

	rep.SteadyItemsPerSec = float64(moved.Load()) / steadyElapsed.Seconds()
	rep.SteadyAllocsPerItem = float64(steadyAllocs) / float64(moved.Load())
	rep.CapCacheHits = met.CapabilityCacheHits.Value() - hitsBefore
	rep.CapCacheMisses = met.CapabilityCacheMisses.Value() - missBefore
	if lookups := rep.CapCacheHits + rep.CapCacheMisses; lookups > 0 {
		rep.CapCacheHitRate = float64(rep.CapCacheHits) / float64(lookups)
	}
	rep.LookupContention = met.ChannelLookupContention.Value()

	// --- Phase 3: churn over the idle population ------------------
	// Retire and re-admit channels drawn from the cold tail while the
	// full population stays resident.  The pooled records make each
	// cycle alloc-bounded; SlabLeaked proves no buffered view escaped.
	span := pairs - hot
	if span > 4096 {
		span = 4096
	}
	cycles := 4 * span
	if span > 0 {
		allocsBefore = mallocs()
		start = time.Now()
		for c := 0; c < cycles; c++ {
			i := hot + c%span
			if !ing.port.Retire(readers[i]) {
				return rep, fmt.Errorf("churn: ingest retire %d failed", i)
			}
			readers[i] = ing.port.Declare("in", transput.ChannelNum(i), chanCap, 1)
			if !eg.port.Retire(writers[i]) {
				return rep, fmt.Errorf("churn: egress retire %d failed", i)
			}
			writers[i] = eg.port.Declare("out", transput.ChannelNum(i), chanCap)
		}
		churnElapsed := time.Since(start)
		churnAllocs := mallocs() - allocsBefore
		rep.ChurnChannelsPerSec = float64(2*cycles) / churnElapsed.Seconds()
		rep.ChurnAllocsPerCycle = float64(churnAllocs) / float64(cycles)
	}

	rep.SlabLeaked = met.SlabLeaked.Value()
	rep.ChannelsLiveEnd = met.ChannelsLive.Value()
	if rep.SlabLeaked != 0 {
		return rep, fmt.Errorf("gateway leaked %d slab views", rep.SlabLeaked)
	}
	if want := int64(2 * pairs); rep.ChannelsLiveEnd != want {
		return rep, fmt.Errorf("ChannelsLive = %d after churn, want %d", rep.ChannelsLiveEnd, want)
	}
	return rep, nil
}

// WriteGatewayBenchJSON runs the gateway workload and writes the
// report to path as indented JSON.
func WriteGatewayBenchJSON(path string, pairs, hot, items int) error {
	rep, err := RunGateway(pairs, hot, items)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// E13Gateway renders the gateway workload as an experiment table.  The
// quick profile keeps the population small enough for CI; the full
// profile is the headline run committed to BENCH_gateway.json.
func E13Gateway(p Params) (Table, error) {
	pairs, hot, items := 100_000, 256, 2_000
	if p.Items <= 300 { // quick profile
		pairs, hot, items = 2_000, 16, 200
	}
	t := Table{
		ID:      "E13",
		Title:   "ingress gateway — million-channel control plane under load",
		Columns: []string{"figure", "value"},
		Notes: []string{
			"striped channel tables + pooled records + capability cache (PR 7)",
			fmt.Sprintf("%d capability channel pairs, %d hot, %d items per hot pair", pairs, hot, items),
		},
	}
	rep, err := RunGateway(pairs, hot, items)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"channels admitted/sec", fmt.Sprintf("%.0f (%.0f ns/channel)", rep.AdmitChannelsPerSec, rep.AdmitNsPerChannel)},
		[]string{"heap bytes/idle channel", fmt.Sprintf("%.0f (gauge %.0f)", rep.HeapBytesPerIdleChannel, rep.GaugeBytesPerIdleChannel)},
		[]string{"steady items/sec", fmt.Sprintf("%.0f", rep.SteadyItemsPerSec)},
		[]string{"steady allocs/item", fmt.Sprintf("%.2f", rep.SteadyAllocsPerItem)},
		[]string{"capability cache hit rate", fmt.Sprintf("%.4f (%d hits, %d misses)", rep.CapCacheHitRate, rep.CapCacheHits, rep.CapCacheMisses)},
		[]string{"lookup contention (locked lookups)", fmt.Sprintf("%d", rep.LookupContention)},
		[]string{"churn channels/sec", fmt.Sprintf("%.0f (%.1f allocs/cycle)", rep.ChurnChannelsPerSec, rep.ChurnAllocsPerCycle)},
		[]string{"slab views leaked", fmt.Sprintf("%d", rep.SlabLeaked)},
		[]string{"channels live at end", fmt.Sprintf("%d", rep.ChannelsLiveEnd)},
	)
	return t, nil
}
