// Package experiments implements the reproduction's evaluation
// harness: one function per experiment in DESIGN.md §4 (E1–E9 plus
// the A1–A3 ablations), each returning a Table that cmd/transput-bench
// prints and that the root-level benchmarks re-measure under
// testing.B.
//
// The paper has no numeric tables — its evaluation is Figures 1–4 and
// closed-form invocation/Eject counting — so every experiment here
// reports *measured* counts on the simulator next to the paper's
// *predicted* formula, plus wall-clock throughput where meaningful.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"asymstream/internal/filters"
	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/unixpipe"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// newKernel builds a fresh single-node kernel for one measurement.
func newKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{})
}

// counterSource emits items numbered lines.
func counterSource(items int) transput.SourceFunc {
	return func(out transput.ItemWriter) error {
		for i := 0; i < items; i++ {
			// Each line is a fresh buffer; transfer it instead of
			// having the output port copy it again.
			if err := transput.PutOwned(out, []byte(fmt.Sprintf("line %d\n", i))); err != nil {
				return err
			}
		}
		return nil
	}
}

// discardSink drains its input.
func discardSink(count *int64) transput.SinkFunc {
	return func(in transput.ItemReader) error {
		for {
			_, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if count != nil {
				*count++
			}
		}
	}
}

// identityFilters returns n pass-through filters.
func identityFilters(n int) []transput.Filter {
	fs := make([]transput.Filter, n)
	for i := range fs {
		fs[i] = transput.Filter{Name: fmt.Sprintf("f%d", i), Body: filters.Identity()}
	}
	return fs
}

// LinearResult is one measured pipeline run.
type LinearResult struct {
	Discipline transput.Discipline
	Filters    int
	Items      int64
	Ejects     int
	// DataInvocations counts Transfer + Deliver.
	DataInvocations  int64
	TotalInvocations int64
	ProcessSwitches  int64
	BytesMoved       int64
	Elapsed          time.Duration
}

// PerDatum is data invocations per item.
func (r LinearResult) PerDatum() float64 {
	if r.Items == 0 {
		return 0
	}
	return float64(r.DataInvocations) / float64(r.Items)
}

// Throughput is items per second.
func (r LinearResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds()
}

// RunLinear builds and runs one linear pipeline on a fresh kernel and
// returns its measurements.
func RunLinear(d transput.Discipline, n, items int, opt transput.Options) (LinearResult, error) {
	k := newKernel()
	defer k.Shutdown()
	var count int64
	before := k.Metrics().Snapshot()
	p, err := transput.BuildPipeline(k, d, counterSource(items), identityFilters(n), discardSink(&count), opt)
	if err != nil {
		return LinearResult{}, err
	}
	start := time.Now()
	if err := p.Run(); err != nil {
		return LinearResult{}, err
	}
	elapsed := time.Since(start)
	diff := metrics.Diff(before, k.Metrics().Snapshot())
	return LinearResult{
		Discipline:       d,
		Filters:          n,
		Items:            count,
		Ejects:           p.Ejects(),
		DataInvocations:  diff.Get("transfer_invocations") + diff.Get("deliver_invocations"),
		TotalInvocations: diff.Get("invocations"),
		ProcessSwitches:  diff.Get("process_switches"),
		BytesMoved:       diff.Get("bytes_moved"),
		Elapsed:          elapsed,
	}, nil
}

// RunUnix builds and runs one Figure 1 pipeline and returns its
// measurements (Syscalls in place of invocations).
func RunUnix(n, items, pipeCapacity int) (LinearResult, int, int, error) {
	met := &metrics.Set{}
	sys := unixpipe.NewSystem(met)
	var count int64
	before := met.Snapshot()
	pl := sys.Build(counterSource(items), identityFilters(n), discardSink(&count), pipeCapacity)
	start := time.Now()
	if err := pl.Run(); err != nil {
		return LinearResult{}, 0, 0, err
	}
	elapsed := time.Since(start)
	diff := metrics.Diff(before, met.Snapshot())
	res := LinearResult{
		Filters:         n,
		Items:           count,
		DataInvocations: diff.Get("syscalls"),
		Elapsed:         elapsed,
	}
	return res, pl.Pipes(), sys.Processes(), nil
}

// crossNodePlacement spreads a pipeline across nodes round-robin:
// source on 0, filter i on (i+1) mod nodes, sink on the last node.
func crossNodePlacement(nodes int) func(transput.Role, int) netsim.NodeID {
	return func(role transput.Role, index int) netsim.NodeID {
		switch role {
		case transput.RoleSource:
			return 0
		case transput.RoleFilter:
			return netsim.NodeID((index + 1) % nodes)
		case transput.RoleBuffer:
			return netsim.NodeID((index + 1) % nodes)
		case transput.RoleSink:
			return netsim.NodeID(nodes - 1)
		default:
			return 0
		}
	}
}
