package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"asymstream/internal/device"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// E8Capability evaluates §5's capability channels: "One way of
// overcoming this problem is to use UIDs as channel identifiers:
// because UIDs cannot be forged, the only Ejects which are able to
// make valid ReadonChannel requests of F are those to which a channel
// identifier has been given explicitly."
//
// The table shows (a) the access-control matrix — the legitimate
// holder reads; integer addressing and guessed UIDs are refused — and
// (b) the runtime cost of the capability check, measured as ns per
// Transfer in integer vs capability mode.
func E8Capability(items int) (Table, error) {
	t := Table{
		ID:      "E8",
		Title:   "§5 security — UID (capability) channel identifiers",
		Columns: []string{"scenario", "outcome"},
		Notes: []string{
			"'if E is told to read from F's channel 1, nothing prevents it from reading from F's channel 2 as well' — unless channels are capabilities",
		},
	}
	k := newKernel()
	defer k.Shutdown()

	srcUID, capChan, err := device.StaticSource(k, 0, manyItems(items), transput.ROStageConfig{
		Name:           "secret-source",
		CapabilityMode: true,
	})
	if err != nil {
		return t, err
	}

	// Legitimate holder of the capability.
	in := transput.NewInPort(k, uid.Nil, srcUID, capChan, transput.InPortConfig{Batch: 16})
	n := 0
	for {
		_, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return t, fmt.Errorf("E8 legit read: %w", err)
		}
		n++
	}
	t.Rows = append(t.Rows, []string{
		"holder of channel capability",
		fmt.Sprintf("read %d items to EOF", n),
	})

	// Forgery 1: integer channel number (the pre-capability scheme).
	forged := transput.NewInPort(k, uid.Nil, srcUID, transput.Chan(0), transput.InPortConfig{})
	_, err = forged.Next()
	t.Rows = append(t.Rows, []string{"integer channel 0 (no capability)", outcomeOf(err)})

	// Forgery 2: a guessed UID.
	guessed := transput.NewInPort(k, uid.Nil, srcUID, transput.CapChan(uid.New()), transput.InPortConfig{})
	_, err = guessed.Next()
	t.Rows = append(t.Rows, []string{"guessed 128-bit capability", outcomeOf(err)})

	// Cost: ns per Transfer, integer vs capability addressing.
	intNs, err := perTransferNs(false)
	if err != nil {
		return t, err
	}
	capNs, err := perTransferNs(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"cost, integer addressing", fmt.Sprintf("%.0f ns/Transfer", intNs)})
	t.Rows = append(t.Rows, []string{"cost, capability addressing", fmt.Sprintf("%.0f ns/Transfer", capNs)})
	return t, nil
}

func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "PERMITTED (security hole!)"
	case errors.Is(err, transput.ErrNotPermitted):
		return "refused: not permitted"
	case errors.Is(err, transput.ErrNoSuchChannel):
		return "refused: no such channel"
	default:
		return "refused: " + err.Error()
	}
}

func manyItems(n int) [][]byte {
	items := make([][]byte, n)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("secret %d\n", i))
	}
	return items
}

// perTransferNs times a full drain of a static source and returns
// nanoseconds per Transfer invocation.
func perTransferNs(capMode bool) (float64, error) {
	const n = 3000
	k := newKernel()
	defer k.Shutdown()
	srcUID, ch, err := device.StaticSource(k, 0, manyItems(n), transput.ROStageConfig{
		Name:           "timed-source",
		CapabilityMode: capMode,
	})
	if err != nil {
		return 0, err
	}
	if !capMode {
		ch = transput.Chan(0)
	}
	in := transput.NewInPort(k, uid.Nil, srcUID, ch, transput.InPortConfig{Batch: 1})
	start := time.Now()
	for {
		_, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	transfers := in.TransfersIssued()
	if transfers == 0 {
		return 0, fmt.Errorf("no transfers issued")
	}
	return float64(elapsed.Nanoseconds()) / float64(transfers), nil
}
