package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"asymstream/internal/transput"
)

// BenchRecord is one machine-readable pipeline measurement: the
// wall-clock and allocation cost of moving one datum end to end,
// alongside the paper-facing invocations-per-datum count.  ns/op and
// allocs/op are whole-pipeline figures (every stage, every kernel
// worker), not single-hop micro-benchmarks; the per-hop numbers live
// in the testing benchmarks.
type BenchRecord struct {
	Pipeline            string  `json:"pipeline"`
	Discipline          string  `json:"discipline"`
	Filters             int     `json:"filters"`
	Items               int64   `json:"items"`
	NsPerOp             float64 `json:"ns_per_op"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	InvocationsPerDatum float64 `json:"invocations_per_datum"`
	ItemsPerSecond      float64 `json:"items_per_second"`
	// Batching names the link batching configuration: "fixed-K" or
	// "adaptive[min,max]" (empty for the Unix baseline, which has no
	// invocation batching).
	Batching string `json:"batching,omitempty"`
}

// BenchReport is the document transput-bench -json emits.
type BenchReport struct {
	Filters int           `json:"filters"`
	Items   int           `json:"items"`
	Records []BenchRecord `json:"records"`
}

// mallocs reads the process-wide allocation count after settling the
// collector, so successive readings bracket a run's allocations.
func mallocs() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// RunBenchJSON measures the four Figure 1/2 pipeline shapes — the Unix
// baseline and the buffered, read-only and write-only Eden disciplines
// — at a fixed filter count and stream length.
func RunBenchJSON(n, items int) (BenchReport, error) {
	rep := BenchReport{Filters: n, Items: items}

	add := func(name, disc string, res LinearResult, perDatum float64) {
		rec := BenchRecord{
			Pipeline:            name,
			Discipline:          disc,
			Filters:             n,
			Items:               res.Items,
			InvocationsPerDatum: perDatum,
			ItemsPerSecond:      res.Throughput(),
		}
		if res.Items > 0 {
			rec.NsPerOp = float64(res.Elapsed.Nanoseconds()) / float64(res.Items)
		}
		rep.Records = append(rep.Records, rec)
	}

	before := mallocs()
	ures, _, _, err := RunUnix(n, items, 64)
	if err != nil {
		return rep, fmt.Errorf("bench unix: %w", err)
	}
	uAllocs := mallocs() - before
	// Subtract the constant close() calls, as E1 does, so the figure
	// matches the paper's 2n+2 prediction.
	uSys := ures.DataInvocations - int64(2*(n+1))
	add("E1-unix", "unix", ures, float64(uSys)/float64(ures.Items))
	rep.Records[len(rep.Records)-1].AllocsPerOp = float64(uAllocs) / float64(ures.Items)

	for _, d := range []struct {
		name  string
		disc  transput.Discipline
		opt   transput.Options
		batch string
	}{
		// Headline figures run the adaptive data plane — the AIMD
		// batch controller is what the engine ships with.
		{"E2-readonly", transput.ReadOnly, transput.Options{BatchMin: 1, BatchMax: 64}, "adaptive[1,64]"},
		{"E3-buffered", transput.Buffered, transput.Options{BatchMin: 1, BatchMax: 64}, "adaptive[1,64]"},
		{"E4-writeonly", transput.WriteOnly, transput.Options{BatchMin: 1, BatchMax: 64}, "adaptive[1,64]"},
		// The paper's batch-1 accounting and a fixed mid-size batch,
		// kept for the before/after table in DESIGN.md §8.
		{"E2-readonly-batch1", transput.ReadOnly, transput.Options{}, "fixed-1"},
		{"E2-readonly-batch4", transput.ReadOnly, transput.Options{Batch: 4}, "fixed-4"},
	} {
		before := mallocs()
		res, err := RunLinear(d.disc, n, items, d.opt)
		if err != nil {
			return rep, fmt.Errorf("bench %s: %w", d.name, err)
		}
		allocs := mallocs() - before
		add(d.name, d.disc.String(), res, res.PerDatum())
		rec := &rep.Records[len(rep.Records)-1]
		rec.AllocsPerOp = float64(allocs) / float64(res.Items)
		rec.Batching = d.batch
	}
	return rep, nil
}

// WriteBenchJSON runs RunBenchJSON and writes the report to path as
// indented JSON.
func WriteBenchJSON(path string, n, items int) error {
	rep, err := RunBenchJSON(n, items)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
