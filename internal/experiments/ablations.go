package experiments

import (
	"fmt"
	"io"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/transput"
)

// A1BatchSweep ablates the Max parameter of Transfer (items per
// invocation).  The 1983 protocol moved one datum per invocation —
// batch 1 reproduces the paper's counting — and the sweep shows how
// batching amortises the per-invocation cost the paper is trying to
// halve by other means.
func A1BatchSweep(n, items int) (Table, error) {
	t := Table{
		ID:      "A1",
		Title:   fmt.Sprintf("ablation — Transfer batch size (read-only, n=%d filters)", n),
		Columns: []string{"batch", "inv/datum", "items/s"},
		Notes: []string{
			"batch 1 is the paper-faithful one-datum-per-invocation regime; batching is the orthogonal optimisation",
		},
	}
	for _, batch := range []int{1, 2, 8, 32, 128} {
		res, err := RunLinear(transput.ReadOnly, n, items, transput.Options{Batch: batch})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.3f", res.PerDatum()),
			fmt.Sprintf("%.0f", res.Throughput()),
		})
	}
	return t, nil
}

// A2PrefetchSweep ablates the InPort's anticipatory read-ahead: 0 is
// the demand-driven (lazy) limit, larger values overlap consumer and
// producer — §4's laziness/parallelism dial seen from the active
// side.
func A2PrefetchSweep(n, items int) (Table, error) {
	t := Table{
		ID:      "A2",
		Title:   fmt.Sprintf("ablation — InPort prefetch depth (read-only, n=%d filters, batch 8)", n),
		Columns: []string{"prefetch", "inv/datum", "items/s"},
	}
	for _, pref := range []int{0, 1, 4, 16} {
		res, err := RunLinear(transput.ReadOnly, n, items, transput.Options{Batch: 8, Prefetch: pref})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pref),
			fmt.Sprintf("%.3f", res.PerDatum()),
			fmt.Sprintf("%.0f", res.Throughput()),
		})
	}
	return t, nil
}

// weather is the record type of the A3 typed-stream workload.
type weather struct {
	Seq     int
	Station string
	TempC   float64
}

// A3RecordStream ablates §6's record streams: the same pipeline moves
// raw byte lines vs gob-framed typed records, quantifying the framing
// cost of "streams of arbitrary records".
func A3RecordStream(items int) (Table, error) {
	t := Table{
		ID:      "A3",
		Title:   "ablation — byte lines vs typed (gob) record streams (§6)",
		Columns: []string{"framing", "items", "items/s", "bytes moved"},
	}

	// Raw byte lines.
	res, err := RunLinear(transput.ReadOnly, 1, items, transput.Options{Batch: 8})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"byte lines",
		fmt.Sprintf("%d", res.Items),
		fmt.Sprintf("%.0f", res.Throughput()),
		fmt.Sprintf("%d", res.BytesMoved),
	})

	// Typed records through the same topology.
	k := newKernel()
	defer k.Shutdown()
	src := func(out transput.ItemWriter) error {
		w := transput.NewRecordWriter[weather](out)
		for i := 0; i < items; i++ {
			if err := w.Write(weather{Seq: i, Station: "KSEA", TempC: 11.5 + float64(i%10)}); err != nil {
				return err
			}
		}
		return nil
	}
	// A typed filter: decode, transform, re-encode.
	toF := transput.Filter{Name: "toFahrenheit", Body: func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		r := transput.NewRecordReader[weather](ins[0])
		w := transput.NewRecordWriter[weather](outs[0])
		for {
			rec, err := r.Read()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			rec.TempC = rec.TempC*9/5 + 32
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}}
	var got int64
	before := k.Metrics().Snapshot()
	p, err := transput.BuildPipeline(k, transput.ReadOnly, src, []transput.Filter{toF},
		func(in transput.ItemReader) error {
			r := transput.NewRecordReader[weather](in)
			for {
				_, err := r.Read()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				got++
			}
		}, transput.Options{Batch: 8})
	if err != nil {
		return t, err
	}
	start := time.Now()
	if err := p.Run(); err != nil {
		return t, err
	}
	elapsed := time.Since(start)
	after := k.Metrics().Snapshot()
	t.Rows = append(t.Rows, []string{
		"gob records",
		fmt.Sprintf("%d", got),
		fmt.Sprintf("%.0f", float64(got)/elapsed.Seconds()),
		fmt.Sprintf("%d", after.Get("bytes_moved")-before.Get("bytes_moved")),
	})
	return t, nil
}

// A4DirectDispatch ablates the kernel's mailbox + worker scheduling:
// DirectDispatch runs Serve in the invoker's goroutine, removing the
// "process switching" the paper counts, while invocation counts stay
// identical — separating communication cost from scheduling cost.
func A4DirectDispatch(n, items int) (Table, error) {
	t := Table{
		ID:      "A4",
		Title:   fmt.Sprintf("ablation — mailbox dispatch vs direct dispatch (read-only, n=%d)", n),
		Columns: []string{"dispatch", "items/s", "inv/datum"},
	}
	for _, direct := range []bool{false, true} {
		k := kernel.New(kernel.Config{DirectDispatch: direct})
		var count int64
		before := k.Metrics().Snapshot()
		p, err := transput.BuildPipeline(k, transput.ReadOnly, counterSource(items), identityFilters(n), discardSink(&count), transput.Options{})
		if err != nil {
			k.Shutdown()
			return t, err
		}
		start := time.Now()
		if err := p.Run(); err != nil {
			k.Shutdown()
			return t, err
		}
		elapsed := time.Since(start)
		after := k.Metrics().Snapshot()
		data := after.Get("transfer_invocations") - before.Get("transfer_invocations")
		k.Shutdown()
		name := "mailbox + workers"
		if direct {
			name = "direct (no scheduling)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.0f", float64(count)/elapsed.Seconds()),
			fmt.Sprintf("%.3f", float64(data)/float64(count)),
		})
	}
	return t, nil
}

// A5PayloadSweep ablates item size: the protocol's per-invocation
// costs amortise over larger records, and cross-node wire bytes grow
// with payload — the tradeoff behind §6's framing freedom (the stream
// carries any homogeneous record; the *size* of the record is the
// tuning knob).
func A5PayloadSweep(n int) (Table, error) {
	t := Table{
		ID:      "A5",
		Title:   fmt.Sprintf("ablation — item size (read-only, n=%d filters, batch 1)", n),
		Columns: []string{"item bytes", "items", "items/s", "MB/s", "bytes moved"},
	}
	for _, size := range []int{16, 256, 4096} {
		items := 20000 / (size/16 + 1)
		if items < 100 {
			items = 100
		}
		k := kernel.New(kernel.Config{})
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte('a' + i%26)
		}
		src := func(out transput.ItemWriter) error {
			for i := 0; i < items; i++ {
				if err := out.Put(payload); err != nil {
					return err
				}
			}
			return nil
		}
		var count int64
		before := k.Metrics().Snapshot()
		p, err := transput.BuildPipeline(k, transput.ReadOnly, src, identityFilters(n), discardSink(&count), transput.Options{})
		if err != nil {
			k.Shutdown()
			return t, err
		}
		start := time.Now()
		if err := p.Run(); err != nil {
			k.Shutdown()
			return t, err
		}
		elapsed := time.Since(start)
		after := k.Metrics().Snapshot()
		bytesMoved := after.Get("bytes_moved") - before.Get("bytes_moved")
		k.Shutdown()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", count),
			fmt.Sprintf("%.0f", float64(count)/elapsed.Seconds()),
			fmt.Sprintf("%.1f", float64(count)*float64(size)/elapsed.Seconds()/1e6),
			fmt.Sprintf("%d", bytesMoved),
		})
	}
	return t, nil
}
