package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Spec is one runnable experiment in the registry.
type Spec struct {
	ID    string
	Short string
	Run   func(p Params) (Table, error)
}

// Params scales the experiments: Quick shrinks the workloads for CI,
// Full uses the defaults reported in EXPERIMENTS.md.
type Params struct {
	Ns    []int
	Items int
}

// DefaultParams returns the standard workload sizes.
func DefaultParams(quick bool) Params {
	if quick {
		return Params{Ns: []int{1, 2, 4}, Items: 300}
	}
	return Params{Ns: SweepN, Items: SweepItems}
}

// Registry lists every experiment, in DESIGN.md order.
func Registry() []Spec {
	return []Spec{
		{"e1", "Figure 1: Unix pipeline syscall counts", func(p Params) (Table, error) {
			return E1UnixPipeline(p.Ns, p.Items)
		}},
		{"e2", "Figure 2: read-only pipeline invocation counts", func(p Params) (Table, error) {
			return E2ReadOnly(p.Ns, p.Items)
		}},
		{"e3", "§4 baseline: buffered pipeline invocation counts", func(p Params) (Table, error) {
			return E3Buffered(p.Ns, p.Items)
		}},
		{"e4", "§5 dual: write-only pipeline invocation counts", func(p Params) (Table, error) {
			return E4WriteOnly(p.Ns, p.Items)
		}},
		{"summary", "headline read-only vs buffered ratios", func(p Params) (Table, error) {
			return SummaryRatio(p.Ns, p.Items)
		}},
		{"e5", "§4 laziness and anticipation bounds", func(p Params) (Table, error) {
			return E5Laziness(p.Items)
		}},
		{"e6", "Figure 3: write-only report streams", func(p Params) (Table, error) {
			return E6Figure3(p.Items)
		}},
		{"e7", "Figure 4: read-only report channels", func(p Params) (Table, error) {
			return E7Figure4(p.Items)
		}},
		{"e8", "§5 capability channel identifiers", func(p Params) (Table, error) {
			return E8Capability(p.Items)
		}},
		{"e9", "§4 cost hierarchy", func(p Params) (Table, error) {
			return E9CostHierarchy()
		}},
		{"e9b", "§4 payoff under cross-node latency", func(p Params) (Table, error) {
			n := 4
			items := p.Items / 4
			if items < 50 {
				items = 50
			}
			return E9Payoff(n, items)
		}},
		{"e10", "§5 fan-in/fan-out matrix", func(p Params) (Table, error) {
			return E10Fan([]int{2, 4, 8}, p.Items/4+25)
		}},
		{"e11", "parallel engine: shard and window scaling", func(p Params) (Table, error) {
			items := p.Items / 2
			if items < 100 {
				items = 100
			}
			return ParallelTable(items)
		}},
		{"e12", "stage fusion: fused vs unfused grid", func(p Params) (Table, error) {
			items := p.Items / 2
			if items < 100 {
				items = 100
			}
			return FusionTable(items)
		}},
		{"e13", "ingress gateway: million-channel control plane", func(p Params) (Table, error) {
			return E13Gateway(p)
		}},
		{"e14", "real-wire transput: netsim vs UDS vs TCP", func(p Params) (Table, error) {
			return E14Transport(p)
		}},
		{"a1", "ablation: Transfer batch size", func(p Params) (Table, error) {
			return A1BatchSweep(4, p.Items)
		}},
		{"a2", "ablation: prefetch depth", func(p Params) (Table, error) {
			return A2PrefetchSweep(4, p.Items)
		}},
		{"a3", "ablation: byte vs gob record streams", func(p Params) (Table, error) {
			return A3RecordStream(p.Items)
		}},
		{"a4", "ablation: mailbox vs direct dispatch", func(p Params) (Table, error) {
			return A4DirectDispatch(4, p.Items)
		}},
		{"a5", "ablation: item payload size", func(p Params) (Table, error) {
			return A5PayloadSweep(4)
		}},
	}
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	specs := Registry()
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}

// Run executes the selected experiments (nil/empty = all) and writes
// their tables to w.
func Run(ids []string, p Params, w io.Writer) error {
	specs := Registry()
	want := make(map[string]bool)
	for _, id := range ids {
		want[strings.ToLower(id)] = true
	}
	known := make(map[string]bool, len(specs))
	for _, s := range specs {
		known[s.ID] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("experiments: unknown ids %v (have %v)", unknown, IDs())
	}
	for _, s := range specs {
		if len(want) > 0 && !want[s.ID] {
			continue
		}
		table, err := s.Run(p)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", s.ID, err)
		}
		if _, err := fmt.Fprintln(w, table.Format()); err != nil {
			return err
		}
	}
	return nil
}
