package experiments

import (
	"fmt"
	"runtime"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// E9CostHierarchy validates the cost assumptions behind the paper's
// efficiency argument (§4):
//
//	"Processes provided within the programming language are likely to
//	be more efficient than the processes of the underlying machine or
//	system ... interprocess communication within an Eject is likely to
//	be much more efficient than invocation."
//
//	"The cost of an invocation must inevitably be higher than that of
//	a system call in an ordinary operating system (because invocation
//	is location-independent), so such saving may be significant."
//
// Part 1 measures the primitive ladder: intra-Eject channel op <
// local invocation < cross-node invocation (serialised) < cross-node
// with wire latency.  Part 2 shows the payoff: as per-invocation cost
// rises, halving the invocations (read-only vs buffered) approaches a
// 2x wall-clock win.
func E9CostHierarchy() (Table, error) {
	t := Table{
		ID:      "E9",
		Title:   "§4 cost hierarchy — intra-Eject vs invocation, and the payoff of halving invocations",
		Columns: []string{"mechanism", "cost"},
	}

	// (a) intra-Eject process communication: one Go channel
	// send+receive between two goroutines.
	t.Rows = append(t.Rows, []string{"intra-Eject (goroutine channel op)", fmt.Sprintf("%.0f ns", chanOpNs())})

	// (b) local invocation.
	localNs, err := invocationNs(netsim.Config{Nodes: 1})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"local invocation (same node)", fmt.Sprintf("%.0f ns", localNs)})

	// (c) cross-node invocation with gob serialisation.
	crossNs, err := invocationNs(netsim.Config{Nodes: 2, EncodePayloads: true})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"cross-node invocation (gob-serialised)", fmt.Sprintf("%.0f ns", crossNs)})

	// (d) cross-node with simulated Ethernet latency.
	lat := 100 * time.Microsecond
	latNs, err := invocationNs(netsim.Config{Nodes: 2, EncodePayloads: true, CrossLatency: lat})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("cross-node invocation (+%v each way)", lat),
		fmt.Sprintf("%.0f ns", latNs),
	})

	t.Notes = append(t.Notes,
		"the ladder confirms §4: in-language processes are far cheaper than invocation, so merging the passive buffer into its source is a real saving")
	return t, nil
}

// E9Payoff measures read-only vs buffered wall-clock as invocation
// cost grows.  The cost is charged as *CPU-consumed* protocol
// processing per cross-node hop (netsim.CrossCPU), the dominant
// invocation cost on 1983 hardware: unlike pure wire latency, CPU
// cost cannot be hidden by running stages concurrently, so halving
// the invocations shows up directly in wall-clock.
func E9Payoff(n, items int) (Table, error) {
	t := Table{
		ID:      "E9b",
		Title:   fmt.Sprintf("§4 payoff — read-only vs buffered wall-clock, n=%d filters spread across nodes", n),
		Columns: []string{"per-hop CPU cost", "read-only", "buffered", "speedup", "ro inv", "buf inv"},
		Notes: []string{
			"every hop (local or remote) is charged busy-spun CPU — invocation cost is location-independent,",
			"the paper's own premise — and GOMAXPROCS is pinned to 1 as on a single-CPU 1983 VAX;",
			"as invocation cost dominates, the wall-clock ratio approaches the 2x invocation ratio",
		},
	}
	// Serialise CPU as on single-processor 1983 nodes.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, cost := range []time.Duration{0, 20 * time.Microsecond, 100 * time.Microsecond} {
		row := []string{cost.String()}
		var invs [2]int64
		var times [2]time.Duration
		for i, d := range []transput.Discipline{transput.ReadOnly, transput.Buffered} {
			k := kernel.New(kernel.Config{Net: netsim.Config{
				Nodes:         n + 2,
				InvocationCPU: cost,
			}})
			var count int64
			before := k.Metrics().Snapshot()
			p, err := transput.BuildPipeline(k, d, counterSource(items), identityFilters(n), discardSink(&count), transput.Options{
				Placement: crossNodePlacement(n + 2),
				// Batch 1, prefetch 0: the paper's counting regime.
			})
			if err != nil {
				k.Shutdown()
				return t, err
			}
			start := time.Now()
			if err := p.Run(); err != nil {
				k.Shutdown()
				return t, err
			}
			times[i] = time.Since(start)
			after := k.Metrics().Snapshot()
			invs[i] = after.Get("invocations") - before.Get("invocations")
			k.Shutdown()
		}
		row = append(row,
			times[0].Round(time.Millisecond).String(),
			times[1].Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(times[1])/float64(times[0])),
			fmt.Sprintf("%d", invs[0]),
			fmt.Sprintf("%d", invs[1]),
		)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// chanOpNs times a goroutine-to-goroutine channel round trip element.
func chanOpNs() float64 {
	const n = 200000
	ch := make(chan []byte, 1)
	done := make(chan struct{})
	go func() {
		for range ch {
		}
		close(done)
	}()
	item := []byte("x")
	start := time.Now()
	for i := 0; i < n; i++ {
		ch <- item
	}
	close(ch)
	<-done
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// echoEject answers OpChannels with an empty advert — the cheapest
// possible invocation target.
type echoEject struct{}

func (echoEject) EdenType() string { return "experiments.Echo" }

func (echoEject) Serve(inv *kernel.Invocation) {
	if inv.Op == transput.OpChannels {
		inv.Reply(&transput.ChannelsReply{})
		return
	}
	inv.Fail(kernel.ErrNoSuchOperation)
}

// invocationNs times a no-op invocation under the given network
// configuration.  With latency configured, fewer iterations are used
// so the experiment stays fast.
func invocationNs(net netsim.Config) (float64, error) {
	n := 20000
	if net.CrossLatency > 0 {
		n = 300
	}
	k := kernel.New(kernel.Config{Net: net})
	defer k.Shutdown()
	target := netsim.NodeID(0)
	if net.Nodes > 1 {
		target = 1
	}
	id, err := k.Create(echoEject{}, target)
	if err != nil {
		return 0, err
	}
	// Warm up (first invocation allocates the dispatcher path).
	if _, err := k.Invoke(uid.Nil, id, transput.OpChannels, &transput.ChannelsRequest{}); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := k.Invoke(uid.Nil, id, transput.OpChannels, &transput.ChannelsRequest{}); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}
