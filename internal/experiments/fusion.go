package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"asymstream/internal/transput"
)

// This file measures and verifies the stage-fusion compiler (§6 of
// DESIGN.md): at Build time, adjacent co-located asymmetric stages are
// compiled into a single Eject, so a fully co-located n-filter chain
// moves each datum with ~1 data invocation instead of the paper's n+1.
// The paper's counts are placement prices; fusion only pays them where
// there is a placement boundary to buy.

// fusionGrid is the benchmark grid: every (n, discipline, batching)
// point is measured with fusion off and on.
var (
	fusionNs        = []int{2, 4, 8}
	fusionBatchings = []struct {
		name string
		opt  transput.Options
	}{
		{"fixed-1", transput.Options{}},
		{"fixed-4", transput.Options{Batch: 4}},
		{"adaptive[1,64]", transput.Options{BatchMin: 1, BatchMax: 64}},
	}
)

// FusionBenchRecord is one fused-vs-unfused measurement pair collapsed
// into a row: same pipeline shape, same batching, only Options.Fusion
// differs.
type FusionBenchRecord struct {
	Pipeline   string `json:"pipeline"`
	Discipline string `json:"discipline"`
	Filters    int    `json:"filters"`
	Batching   string `json:"batching"`
	Items      int64  `json:"items"`

	UnfusedNsPerOp  float64 `json:"unfused_ns_per_op"`
	FusedNsPerOp    float64 `json:"fused_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	UnfusedInvDatum float64 `json:"unfused_invocations_per_datum"`
	FusedInvDatum   float64 `json:"fused_invocations_per_datum"`
	UnfusedEjects   int     `json:"unfused_ejects"`
	FusedEjects     int     `json:"fused_ejects"`
	UnfusedAllocs   float64 `json:"unfused_allocs_per_op"`
	FusedAllocs     float64 `json:"fused_allocs_per_op"`
}

// FusionBenchReport is the document transput-bench -json-out-fusion
// emits, alongside the three existing BENCH files.
type FusionBenchReport struct {
	Items   int                 `json:"items"`
	Records []FusionBenchRecord `json:"records"`
}

func runFusionPoint(d transput.Discipline, n, items int, opt transput.Options) (LinearResult, float64, error) {
	before := mallocs()
	res, err := RunLinear(d, n, items, opt)
	if err != nil {
		return res, 0, err
	}
	allocs := float64(mallocs()-before) / float64(res.Items)
	return res, allocs, nil
}

// RunFusionBench measures the fused-vs-unfused grid.  The E2-readonly
// batch-1 rows are the headline: at batch 1 every elided hop is a full
// invocation round trip, so fusion's effect is largest exactly where
// the paper's accounting is strictest.
func RunFusionBench(items int) (FusionBenchReport, error) {
	rep := FusionBenchReport{Items: items}
	for _, d := range []transput.Discipline{transput.ReadOnly, transput.WriteOnly} {
		name := "E2-readonly"
		if d == transput.WriteOnly {
			name = "E4-writeonly"
		}
		for _, n := range fusionNs {
			for _, b := range fusionBatchings {
				off := b.opt
				off.Fusion = transput.FusionOff
				on := b.opt
				on.Fusion = transput.FusionOn
				ures, uAllocs, err := runFusionPoint(d, n, items, off)
				if err != nil {
					return rep, fmt.Errorf("fusion bench %s n=%d %s off: %w", name, n, b.name, err)
				}
				fres, fAllocs, err := runFusionPoint(d, n, items, on)
				if err != nil {
					return rep, fmt.Errorf("fusion bench %s n=%d %s on: %w", name, n, b.name, err)
				}
				rec := FusionBenchRecord{
					Pipeline:        fmt.Sprintf("%s-%s", name, b.name),
					Discipline:      d.String(),
					Filters:         n,
					Batching:        b.name,
					Items:           fres.Items,
					UnfusedInvDatum: ures.PerDatum(),
					FusedInvDatum:   fres.PerDatum(),
					UnfusedEjects:   ures.Ejects,
					FusedEjects:     fres.Ejects,
					UnfusedAllocs:   uAllocs,
					FusedAllocs:     fAllocs,
				}
				if ures.Items > 0 {
					rec.UnfusedNsPerOp = float64(ures.Elapsed.Nanoseconds()) / float64(ures.Items)
				}
				if fres.Items > 0 {
					rec.FusedNsPerOp = float64(fres.Elapsed.Nanoseconds()) / float64(fres.Items)
				}
				if rec.FusedNsPerOp > 0 {
					rec.Speedup = rec.UnfusedNsPerOp / rec.FusedNsPerOp
				}
				rep.Records = append(rep.Records, rec)
			}
		}
	}
	return rep, nil
}

// WriteFusionBenchJSON runs RunFusionBench and writes the report to
// path as indented JSON.
func WriteFusionBenchJSON(path string, items int) error {
	rep, err := RunFusionBench(items)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FusionTable is experiment E12: the fused-vs-unfused grid as a
// printable table.
func FusionTable(items int) (Table, error) {
	t := Table{
		ID:      "E12",
		Title:   "stage fusion — fused vs unfused: invocations, Ejects, wall-clock",
		Columns: []string{"pipeline", "n", "batching", "inv/datum off→on", "ejects off→on", "ns/op off→on", "speedup"},
		Notes: []string{
			"fusion compiles adjacent co-located stages into one Eject; counts with fusion off are the paper's",
		},
	}
	rep, err := RunFusionBench(items)
	if err != nil {
		return t, err
	}
	for _, r := range rep.Records {
		t.Rows = append(t.Rows, []string{
			r.Pipeline,
			fmt.Sprintf("%d", r.Filters),
			r.Batching,
			fmt.Sprintf("%.2f→%.2f", r.UnfusedInvDatum, r.FusedInvDatum),
			fmt.Sprintf("%d→%d", r.UnfusedEjects, r.FusedEjects),
			fmt.Sprintf("%.0f→%.0f", r.UnfusedNsPerOp, r.FusedNsPerOp),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return t, nil
}

// VerifyFusion checks the fusion compiler's contract from live runs:
// fused pipelines are byte-identical to unfused ones, a fully
// co-located chain collapses to 2 Ejects and ~1 invocation per datum,
// and — the part the paper's claims rest on — Options.Fusion off
// reproduces the exact n+1 / n+2 accounting.
func VerifyFusion(p Params) []string {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	for _, n := range p.Ns {
		for _, d := range []transput.Discipline{transput.ReadOnly, transput.WriteOnly} {
			off, offDig, err := RunLinearDigest(d, n, p.Items, transput.Options{Fusion: transput.FusionOff})
			if err != nil {
				fail("fusion-off %v n=%d: %v", d, n, err)
				continue
			}
			on, onDig, err := RunLinearDigest(d, n, p.Items, transput.Options{Fusion: transput.FusionOn})
			if err != nil {
				fail("fusion-on %v n=%d: %v", d, n, err)
				continue
			}
			if offDig != onDig {
				fail("%v n=%d: fusion changed the byte stream (digest %s vs %s)", d, n, onDig, offDig)
			}
			// Explicit off must be the paper's accounting, bit for bit
			// with the zero-value default.
			if off.Ejects != n+2 {
				fail("fusion-off %v n=%d: %d Ejects, paper predicts %d", d, n, off.Ejects, n+2)
			}
			if diff := math.Abs(off.PerDatum() - float64(n+1)); diff > 0.2 {
				fail("fusion-off %v n=%d: %.3f inv/datum, paper predicts %d", d, n, off.PerDatum(), n+1)
			}
			// Fully co-located: one fused group absorbs everything but
			// the pump, so 2 Ejects and ~1 data invocation per datum.
			if on.Ejects != 2 {
				fail("fusion-on %v n=%d: %d Ejects, fusion predicts 2", d, n, on.Ejects)
			}
			if diff := math.Abs(on.PerDatum() - 1); diff > 0.2 {
				fail("fusion-on %v n=%d: %.3f inv/datum, fusion predicts 1", d, n, on.PerDatum())
			}
		}

		// Boundaries stay real: sharded filters are never fused, and a
		// sharded windowed chain built with fusion on must still deliver
		// the identical byte stream.
		if n >= 2 {
			_, mixOffDig, err := RunLinearDigest(transput.ReadOnly, n, p.Items,
				transput.Options{Shards: 2, Window: 2})
			if err != nil {
				fail("mixed fusion-off n=%d: %v", n, err)
				continue
			}
			_, mixOnDig, err := RunLinearDigest(transput.ReadOnly, n, p.Items,
				transput.Options{Shards: 2, Window: 2, Fusion: transput.FusionOn})
			if err != nil {
				fail("mixed fusion-on n=%d: %v", n, err)
				continue
			}
			if mixOffDig != mixOnDig {
				fail("mixed n=%d: fusion changed the sharded byte stream", n)
			}
		}

		// Buffered pipelines refuse fusion outright.
		bu, err := RunLinear(transput.Buffered, n, p.Items, transput.Options{Fusion: transput.FusionOn})
		if err != nil {
			fail("buffered fusion-on n=%d: %v", n, err)
			continue
		}
		if bu.Ejects != 2*n+3 {
			fail("buffered fusion-on n=%d: %d Ejects, must stay %d (fusion refused)", n, bu.Ejects, 2*n+3)
		}
	}
	return bad
}
