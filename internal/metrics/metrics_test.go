package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero counter must read 0")
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Set(7)
	if got := c.Value(); got != 7 {
		t.Fatalf("after Set: %d, want 7", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("concurrent counter = %d, want 16000", got)
	}
}

func TestHighWater(t *testing.T) {
	var h HighWater
	if h.Value() != 0 {
		t.Fatal("zero high-water must read 0")
	}
	h.Observe(5)
	h.Observe(3)
	if got := h.Value(); got != 5 {
		t.Fatalf("high-water = %d, want 5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(int64(i*1000 + j))
			}
		}()
	}
	wg.Wait()
	if got := h.Value(); got != 7999 {
		t.Fatalf("concurrent high-water = %d, want 7999", got)
	}
}

func TestSnapshotDiff(t *testing.T) {
	var s Set
	before := s.Snapshot()
	s.Invocations.Add(10)
	s.Syscalls.Add(3)
	s.TransferInvocations.Add(7)
	after := s.Snapshot()
	d := Diff(before, after)
	if d.Get("invocations") != 10 {
		t.Errorf("invocations diff = %d, want 10", d.Get("invocations"))
	}
	if d.Get("syscalls") != 3 {
		t.Errorf("syscalls diff = %d, want 3", d.Get("syscalls"))
	}
	if d.Get("transfer_invocations") != 7 {
		t.Errorf("transfer diff = %d, want 7", d.Get("transfer_invocations"))
	}
	if d.Get("replies") != 0 {
		t.Errorf("replies diff = %d, want 0", d.Get("replies"))
	}
	if d.Get("nonexistent") != 0 {
		t.Error("unknown counter should read 0")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Add(10)
	g.Dec()
	g.Sub(4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge after Set = %d, want -3", got)
	}
}

func TestSnapshotCoversEveryCounter(t *testing.T) {
	var s Set
	snap := s.Snapshot()
	want := []string{
		"invocations", "local_invocations", "cross_node_invocations",
		"replies", "process_switches", "bytes_moved", "wire_bytes",
		"activations", "checkpoints", "syscalls", "ejects_created",
		"transfer_invocations", "deliver_invocations", "items_moved",
		"shard_frames", "wire_frames_encoded", "wire_bytes_saved",
		"slab_retained", "slab_released", "slab_leaked",
		"fusion_groups", "fused_stages",
		"channels_live", "idle_channel_bytes", "channel_lookup_contention",
		"cap_cache_hits", "cap_cache_misses",
		"window_depth_hw", "merge_reorder_hw", "batch_size_hw",
	}
	if len(snap.Values) != len(want) {
		t.Fatalf("snapshot has %d counters, want %d", len(snap.Values), len(want))
	}
	for _, name := range want {
		if _, ok := snap.Values[name]; !ok {
			t.Errorf("snapshot missing counter %q", name)
		}
	}
}

func TestSnapshotStringOmitsZeros(t *testing.T) {
	var s Set
	s.Invocations.Add(2)
	s.BytesMoved.Add(100)
	str := s.Snapshot().String()
	if !strings.Contains(str, "invocations=2") {
		t.Errorf("String() = %q, missing invocations", str)
	}
	if !strings.Contains(str, "bytes_moved=100") {
		t.Errorf("String() = %q, missing bytes_moved", str)
	}
	if strings.Contains(str, "syscalls") {
		t.Errorf("String() = %q should omit zero counters", str)
	}
}

func TestDiffMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Diff of mismatched snapshots should panic")
		}
	}()
	Diff(Snapshot{Values: map[string]int64{"a": 1}}, Snapshot{Values: map[string]int64{"a": 1, "b": 2}})
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if names := r.Names(); len(names) != 0 {
		t.Fatalf("fresh registry has names %v", names)
	}
	s1, s2 := &Set{}, &Set{}
	r.Register("beta", s1)
	r.Register("alpha", s2)
	if got := r.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Names() = %v, want [alpha beta]", got)
	}
	if s, ok := r.Get("beta"); !ok || s != s1 {
		t.Error("Get(beta) mismatch")
	}
	if _, ok := r.Get("gamma"); ok {
		t.Error("Get(gamma) should miss")
	}
	r.Register("beta", s2) // replace
	if s, _ := r.Get("beta"); s != s2 {
		t.Error("Register should replace")
	}
}
