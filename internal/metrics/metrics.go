// Package metrics provides the counters with which the reproduction
// meters the quantities the paper reasons about: invocations (the
// paper's unit of communication cost), process switches, bytes moved,
// and — for the Unix baseline of Figure 1 — system calls.
//
// All counters are cheap atomics so that metering does not distort the
// throughput benchmarks that compare the transput disciplines.  A
// Snapshot captures every counter at an instant; Diff subtracts two
// snapshots, which is how the benchmark harness attributes costs to a
// single pipeline run.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Set forces the counter to n.  Only tests use this.
func (c *Counter) Set(n int64) { c.v.Store(n) }

// HighWater is an atomic maximum tracker: Observe folds a sample in,
// Value reads the largest sample seen.  The parallel stream engine uses
// it for quantities where the interesting number is the peak, not the
// sum — in-flight window depth and merge reorder-buffer occupancy.
type HighWater struct {
	v atomic.Int64
}

// Observe records n if it exceeds the current maximum.
func (h *HighWater) Observe(n int64) {
	for {
		cur := h.v.Load()
		if n <= cur {
			return
		}
		if h.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the largest observed sample (0 if none).
func (h *HighWater) Value() int64 { return h.v.Load() }

// Gauge is an atomic level meter: unlike a Counter it moves in both
// directions, so it reports how much of something exists *now* (live
// channels, resident idle-channel bytes) rather than how much has ever
// happened.  The control-plane metrics use it for quantities that
// shrink on teardown.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc raises the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Sub lowers the gauge by n.
func (g *Gauge) Sub(n int64) { g.v.Add(-n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Set forces the gauge to n.  Only tests use this.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Set is the fixed collection of counters the reproduction meters.  A
// single Set is shared by one simulated Eden system (kernel + network
// + devices); independent systems have independent Sets, so parallel
// benchmarks do not contaminate each other.
type Set struct {
	// Invocations counts every inter-Eject invocation routed through
	// the kernel, the paper's fundamental cost unit.
	Invocations Counter
	// LocalInvocations / CrossNodeInvocations partition Invocations by
	// whether source and target Ejects share a simulated node.
	LocalInvocations     Counter
	CrossNodeInvocations Counter
	// Replies counts invocation replies (== completed invocations).
	Replies Counter
	// ProcessSwitches approximates scheduling cost: every delivery of
	// an invocation to a target Eject and every delivery of a reply to
	// the invoker counts as one switch, matching the paper's
	// "communications overhead and process switching" bullet.
	ProcessSwitches Counter
	// BytesMoved counts payload bytes crossing Eject boundaries.
	BytesMoved Counter
	// WireBytes counts gob-encoded bytes on cross-node hops (0 when
	// serialisation is disabled).
	WireBytes Counter
	// Activations counts kernel activations of passive Ejects.
	Activations Counter
	// Checkpoints counts Checkpoint operations (stable storage writes).
	Checkpoints Counter
	// Syscalls counts simulated Unix system calls in the Figure 1
	// baseline (read/write/open/close on kernel pipes).
	Syscalls Counter
	// EjectsCreated counts Eject registrations, so experiments can
	// report the paper's n+2 vs 2n+3 Eject counts directly.
	EjectsCreated Counter
	// TransferInvocations counts stream-protocol Transfer (pull)
	// invocations specifically, and DeliverInvocations the write-only
	// dual, so the per-datum counts of E1–E4 can be isolated from
	// control-plane invocations (initialisation, close, lookup...).
	TransferInvocations Counter
	DeliverInvocations  Counter
	// ItemsMoved counts stream items (records or byte chunks) that
	// crossed an Eject boundary inside Transfer/Deliver payloads.
	ItemsMoved Counter
	// ShardFrames counts framed items (data, punctuation, epilogue)
	// moved across sharded pipeline links by the parallel engine.
	ShardFrames Counter
	// WireFramesEncoded counts payloads pushed through the compact wire
	// codec on cross-node hops (gob-fallback encodes are included; the
	// codec wraps them in a tagged frame too).
	WireFramesEncoded Counter
	// WireBytesSaved counts payload bytes handed across a port boundary
	// by ownership transfer (PutOwned / zero-copy Deliver absorption)
	// instead of being copied — the data plane's copy-elision meter.
	WireBytesSaved Counter
	// SlabRetained / SlabReleased count references taken on and dropped
	// from refcounted slab views (frame buffers carved from arenas).
	// At quiescence the two are equal; the difference is the number of
	// live views.
	SlabRetained Counter
	SlabReleased Counter
	// SlabLeaked counts views still outstanding when their slab was
	// closed (pipeline teardown) — the refcount-audit failure counter.
	// It stays zero when every drop path releases its views.
	SlabLeaked Counter
	// FusionGroups counts fusion groups the pipeline builder compiled
	// (adjacent co-located stages collapsed into one Eject), and
	// FusedStages the member stages inside them — so FusedStages minus
	// FusionGroups is the number of port hops the fusion pass elided.
	// Both stay zero with Options.Fusion off, keeping the paper's
	// stage-per-Eject accounting intact.
	FusionGroups Counter
	FusedStages  Counter
	// ChannelsLive gauges the number of transput channels currently
	// declared and not yet retired, across every port in the system —
	// the control plane's primary scaling axis (the gateway workload
	// drives it to 10⁵–10⁶).
	ChannelsLive Gauge
	// IdleChannelBytes gauges the fixed resident footprint of the live
	// channels: per-channel record size plus the amortised index-entry
	// share, added on Declare and subtracted on Retire.  Dividing by
	// ChannelsLive gives the advertised bytes-per-idle-channel figure.
	IdleChannelBytes Gauge
	// ChannelLookupContention counts lookups (kernel binding resolution
	// and port channel resolution) that missed the lock-free snapshot
	// and fell back to the striped table's locked slow path — the
	// control plane's serialisation meter.  Zero in steady state.
	ChannelLookupContention Counter
	// CapabilityCacheHits / CapabilityCacheMisses count capability-mode
	// channel verifications served by the direct-mapped capability
	// cache versus those that had to re-verify against the striped
	// table (first use per channel-binding epoch, or cache eviction).
	CapabilityCacheHits   Counter
	CapabilityCacheMisses Counter
	// WindowDepthHighWater tracks the peak number of concurrently
	// outstanding Transfer/Deliver invocations on any windowed port.
	WindowDepthHighWater HighWater
	// MergeReorderHighWater tracks the peak number of frames held back
	// by an order-preserving shard merger (stash + ready queue).
	MergeReorderHighWater HighWater
	// BatchSizeHighWater tracks the largest batch size any adaptive
	// per-link AIMD controller reached (Transfer Max / Deliver batch).
	BatchSizeHighWater HighWater
}

// Snapshot is a point-in-time copy of every counter in a Set.
type Snapshot struct {
	Values map[string]int64
}

// fieldTable enumerates the counters of a Set by name, in a fixed
// order.  It is built once at package init; Snapshot walks it instead
// of assembling a fresh descriptor slice per call.
var fieldTable = []struct {
	name string
	get  func(*Set) int64
}{
	{"invocations", func(s *Set) int64 { return s.Invocations.Value() }},
	{"local_invocations", func(s *Set) int64 { return s.LocalInvocations.Value() }},
	{"cross_node_invocations", func(s *Set) int64 { return s.CrossNodeInvocations.Value() }},
	{"replies", func(s *Set) int64 { return s.Replies.Value() }},
	{"process_switches", func(s *Set) int64 { return s.ProcessSwitches.Value() }},
	{"bytes_moved", func(s *Set) int64 { return s.BytesMoved.Value() }},
	{"wire_bytes", func(s *Set) int64 { return s.WireBytes.Value() }},
	{"activations", func(s *Set) int64 { return s.Activations.Value() }},
	{"checkpoints", func(s *Set) int64 { return s.Checkpoints.Value() }},
	{"syscalls", func(s *Set) int64 { return s.Syscalls.Value() }},
	{"ejects_created", func(s *Set) int64 { return s.EjectsCreated.Value() }},
	{"transfer_invocations", func(s *Set) int64 { return s.TransferInvocations.Value() }},
	{"deliver_invocations", func(s *Set) int64 { return s.DeliverInvocations.Value() }},
	{"items_moved", func(s *Set) int64 { return s.ItemsMoved.Value() }},
	{"shard_frames", func(s *Set) int64 { return s.ShardFrames.Value() }},
	{"wire_frames_encoded", func(s *Set) int64 { return s.WireFramesEncoded.Value() }},
	{"wire_bytes_saved", func(s *Set) int64 { return s.WireBytesSaved.Value() }},
	{"slab_retained", func(s *Set) int64 { return s.SlabRetained.Value() }},
	{"slab_released", func(s *Set) int64 { return s.SlabReleased.Value() }},
	{"slab_leaked", func(s *Set) int64 { return s.SlabLeaked.Value() }},
	{"fusion_groups", func(s *Set) int64 { return s.FusionGroups.Value() }},
	{"fused_stages", func(s *Set) int64 { return s.FusedStages.Value() }},
	{"channels_live", func(s *Set) int64 { return s.ChannelsLive.Value() }},
	{"idle_channel_bytes", func(s *Set) int64 { return s.IdleChannelBytes.Value() }},
	{"channel_lookup_contention", func(s *Set) int64 { return s.ChannelLookupContention.Value() }},
	{"cap_cache_hits", func(s *Set) int64 { return s.CapabilityCacheHits.Value() }},
	{"cap_cache_misses", func(s *Set) int64 { return s.CapabilityCacheMisses.Value() }},
	{"window_depth_hw", func(s *Set) int64 { return s.WindowDepthHighWater.Value() }},
	{"merge_reorder_hw", func(s *Set) int64 { return s.MergeReorderHighWater.Value() }},
	{"batch_size_hw", func(s *Set) int64 { return s.BatchSizeHighWater.Value() }},
}

// Snapshot captures the current value of every counter.
func (s *Set) Snapshot() Snapshot {
	snap := Snapshot{Values: make(map[string]int64, len(fieldTable))}
	for _, f := range fieldTable {
		snap.Values[f.name] = f.get(s)
	}
	return snap
}

// Diff returns a Snapshot holding later-minus-earlier for every
// counter.  It panics if the snapshots have different key sets, which
// would indicate mixed metric versions.
func Diff(earlier, later Snapshot) Snapshot {
	if len(earlier.Values) != len(later.Values) {
		panic("metrics: mismatched snapshots")
	}
	d := Snapshot{Values: make(map[string]int64, len(later.Values))}
	for k, v := range later.Values {
		ev, ok := earlier.Values[k]
		if !ok {
			panic("metrics: mismatched snapshots: missing " + k)
		}
		d.Values[k] = v - ev
	}
	return d
}

// Get returns the named counter value (0 if absent).
func (sn Snapshot) Get(name string) int64 { return sn.Values[name] }

// String renders the snapshot as "name=value" pairs in sorted order,
// omitting zero counters to keep experiment output readable.
func (sn Snapshot) String() string {
	keys := make([]string, 0, len(sn.Values))
	for k, v := range sn.Values {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, sn.Values[k])
	}
	return b.String()
}

// Registry maps names to Sets so tools can enumerate the systems that
// exist in one process (the shell creates one per session).
type Registry struct {
	mu   sync.Mutex
	sets map[string]*Set
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{sets: make(map[string]*Set)} }

// Register adds a named Set, replacing any previous Set of that name.
func (r *Registry) Register(name string, s *Set) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sets[name] = s
}

// Get looks up a Set by name.
func (r *Registry) Get(name string) (*Set, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sets[name]
	return s, ok
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sets))
	for n := range r.sets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
