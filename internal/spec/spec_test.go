package spec

import (
	"errors"
	"strings"
	"testing"

	"asymstream/internal/device"
	"asymstream/internal/fsys"
	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

func specKernel(t testing.TB) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{})
	fsys.RegisterTypes(k)
	t.Cleanup(k.Shutdown)
	return k
}

// TestDirectoryAndConcatenatorConform is §2's central example run as a
// check: "From the point of view of an Eject trying to perform a
// Lookup operation, any Eject which responds in the appropriate way is
// a satisfactory directory" — the concatenator passes the same
// directory spec as the real directory, despite being a different Eden
// type.
func TestDirectoryAndConcatenatorConform(t *testing.T) {
	k := specKernel(t)
	_, dirUID, err := fsys.NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, catUID, err := fsys.NewDirectoryConcatenator(k, 0, []uid.UID{dirUID})
	if err != nil {
		t.Fatal(err)
	}
	if err := Conforms(k, uid.Nil, dirUID, DirectorySpec()); err != nil {
		t.Errorf("Directory does not conform: %v", err)
	}
	if err := Conforms(k, uid.Nil, catUID, DirectorySpec()); err != nil {
		t.Errorf("Concatenator does not conform (the paper's whole point): %v", err)
	}
	// The full (mutating) spec: the directory satisfies it, the
	// concatenator does not — a genuine behavioural difference the
	// checker must see.
	if err := Conforms(k, uid.Nil, dirUID, DirectoryMutableSpec()); err != nil {
		t.Errorf("Directory does not conform to the full spec: %v", err)
	}
	if err := Conforms(k, uid.Nil, catUID, DirectoryMutableSpec()); err == nil {
		t.Error("Concatenator claims to support AddEntry/DeleteEntry")
	}
}

// TestSupersetRule: a directory is also a satisfactory *source*-of-
// listings consumer target via its List stream, and — the superset
// rule — a File (which supports Open, Stat, Map AND stream ops via
// its transient streams) still conforms to MapSpec: extra operations
// never hurt.
func TestSupersetRule(t *testing.T) {
	k := specKernel(t)
	_, fileUID, err := fsys.NewFileWithContent(k, 0, []byte("content\n"))
	if err != nil {
		t.Fatal(err)
	}
	// File speaks Map — despite also speaking Open/WriteFrom/Stat.
	if err := Conforms(k, uid.Nil, fileUID, MapSpec()); err != nil {
		t.Errorf("File does not conform to MapSpec: %v", err)
	}
	// MapStore speaks Map and refuses streams.
	_, msUID, err := fsys.NewMapStore(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Conforms(k, uid.Nil, msUID, MapSpec()); err != nil {
		t.Errorf("MapStore does not conform to MapSpec: %v", err)
	}
	if err := Conforms(k, uid.Nil, msUID, NotAStreamSpec()); err != nil {
		t.Errorf("MapStore does not refuse Transfer: %v", err)
	}
}

// TestSourcesConform: very different Eden types — a static stage, a
// transient file stream, the clock device — all satisfy the same
// source spec.
func TestSourcesConform(t *testing.T) {
	k := specKernel(t)

	staticUID, staticChan, err := device.StaticSource(k, 0,
		transput.SplitLines([]byte("x\n")), transput.ROStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Conforms(k, uid.Nil, staticUID, SourceSpec(staticChan)); err != nil {
		t.Errorf("static source: %v", err)
	}

	_, fileUID, err := fsys.NewFileWithContent(k, 0, []byte("y\n"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fsys.Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Conforms(k, uid.Nil, ref.UID, SourceSpec(ref.Channel)); err != nil {
		t.Errorf("file stream: %v", err)
	}

	_, clockUID, err := device.NewClockSource(k, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := Conforms(k, uid.Nil, clockUID, SourceSpec(transput.Chan(0))); err != nil {
		t.Errorf("clock: %v", err)
	}
}

// TestNonConformanceIsDiagnosed: a file is not a directory, and the
// error says which probes failed.
func TestNonConformanceIsDiagnosed(t *testing.T) {
	k := specKernel(t)
	_, fileUID, err := fsys.NewFile(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = Conforms(k, uid.Nil, fileUID, DirectorySpec())
	if err == nil {
		t.Fatal("a File conformed to the directory spec")
	}
	var ce *ConformanceError
	if !errors.As(err, &ce) {
		t.Fatalf("error type %T", err)
	}
	if len(ce.Violations) != 2 {
		t.Fatalf("violations = %v", ce.Violations)
	}
	if !strings.Contains(err.Error(), "Lookup") && !strings.Contains(err.Error(), "lookup") {
		t.Fatalf("diagnosis missing op names: %v", err)
	}
}

// TestAllowErrorRequiresRefusal: NotAStreamSpec fails against an Eject
// that DOES serve Transfer.
func TestAllowErrorRequiresRefusal(t *testing.T) {
	k := specKernel(t)
	srcUID, _, err := device.StaticSource(k, 0,
		transput.SplitLines([]byte("x\n")), transput.ROStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Conforms(k, uid.Nil, srcUID, NotAStreamSpec()); err == nil {
		t.Fatal("a stream source passed the refuses-streams spec")
	}
}
