// Package spec makes §2's behavioural compatibility executable.
//
// The paper: "Each Eject may be thought of as an abstract machine ...
// Since this pattern of invocation and reply is all that other
// entities can observe about the Eject, all Ejects with equivalent
// state machines provide the same functionality. ... From the point of
// view of an Eject trying to perform a Lookup operation, any Eject
// which responds in the appropriate way is a satisfactory directory."
// And the superset rule: "provided that S' contains all the operations
// of S and that their semantics are the same, it does not matter to E
// that S' contains other operations in addition."
//
// A Spec is a set of probes — operations with request vectors and
// reply validators — and Conforms runs them against a live Eject.  An
// Eject conforms if every probe succeeds, regardless of its Eden type
// and regardless of any *other* operations it supports: conformance is
// observational, exactly as in the paper.  (The 1983 system had no
// mechanical checker; this is the reproduction's test instrument for
// the paper's compatibility arguments.)
package spec

import (
	"errors"
	"fmt"
	"strings"

	"asymstream/internal/kernel"
	"asymstream/internal/uid"
)

// Probe is one observation: invoke Op with Request and validate the
// reply.
type Probe struct {
	// Name describes the probe in failure messages.
	Name string
	// Op is the operation to invoke.
	Op string
	// Request builds the request payload (a fresh one per run, since
	// payloads may be mutated by transport).
	Request func() any
	// Validate inspects the reply payload; nil means any successful
	// reply conforms.
	Validate func(reply any) error
	// AllowError, when non-nil, treats an invocation error matching
	// the predicate as conforming (e.g. probing that an op is
	// *refused* is itself a behavioural observation).
	AllowError func(err error) bool
}

// Spec is a named set of probes: the abstract machine's observable
// fragment.
type Spec struct {
	Name   string
	Probes []Probe
}

// Violation describes one failed probe.
type Violation struct {
	Probe string
	Op    string
	Err   error
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	return fmt.Sprintf("%s (%s): %v", v.Probe, v.Op, v.Err)
}

// ConformanceError aggregates a run's violations.
type ConformanceError struct {
	Spec       string
	Target     uid.UID
	Violations []Violation
}

// Error implements the error interface.
func (e *ConformanceError) Error() string {
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.String()
	}
	return fmt.Sprintf("spec: %s does not conform to %q: %s",
		e.Target, e.Spec, strings.Join(parts, "; "))
}

// Conforms probes target and reports nil if every probe passes.
// Probes run in order (earlier probes may establish state later ones
// rely on, like the paper's List-then-Read directories).
func Conforms(k *kernel.Kernel, from, target uid.UID, s Spec) error {
	var violations []Violation
	for _, p := range s.Probes {
		raw, err := k.Invoke(from, target, p.Op, p.Request())
		if err != nil {
			if p.AllowError != nil && p.AllowError(err) {
				continue
			}
			violations = append(violations, Violation{Probe: p.Name, Op: p.Op, Err: err})
			continue
		}
		if p.AllowError != nil {
			violations = append(violations, Violation{
				Probe: p.Name, Op: p.Op,
				Err: errors.New("operation succeeded but the spec requires refusal"),
			})
			continue
		}
		if p.Validate != nil {
			if verr := p.Validate(raw); verr != nil {
				violations = append(violations, Violation{Probe: p.Name, Op: p.Op, Err: verr})
			}
		}
	}
	if len(violations) > 0 {
		return &ConformanceError{Spec: s.Name, Target: target, Violations: violations}
	}
	return nil
}

// expect asserts a reply's concrete type, returning it for further
// validation.
func expect[T any](raw any) (T, error) {
	v, ok := raw.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("reply type %T, want %T", raw, zero)
	}
	return v, nil
}
