package spec

import (
	"errors"
	"fmt"

	"asymstream/internal/fsys"
	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// This file defines the reproduction's standard abstract machines —
// the specifications client Ejects actually assume.

// DirectorySpec is the abstract directory machine of §2: Lookup of an
// absent name answers found=false (not an error); AddEntry, Lookup of
// the added name, DeleteEntry and List behave as a directory's should.
// Both fsys.Directory and fsys.DirectoryConcatenator satisfy it for
// Lookup/List; the mutating probes are in DirectoryMutableSpec because
// a concatenator (like a read-only directory view) need not accept
// them — S' need only be a superset of what the *client* assumes.
func DirectorySpec() Spec {
	return Spec{
		Name: "directory (lookup/list)",
		Probes: []Probe{
			{
				Name:    "lookup of an absent name answers found=false",
				Op:      fsys.OpLookup,
				Request: func() any { return &fsys.LookupRequest{Name: "spec-absent-name"} },
				Validate: func(raw any) error {
					rep, err := expect[*fsys.LookupReply](raw)
					if err != nil {
						return err
					}
					if rep.Found {
						return errors.New("phantom entry for an absent name")
					}
					return nil
				},
			},
			{
				Name:    "List yields a readable stream",
				Op:      fsys.OpList,
				Request: func() any { return &fsys.ListRequest{} },
				Validate: func(raw any) error {
					rep, err := expect[*fsys.ListReply](raw)
					if err != nil {
						return err
					}
					if rep.Stream.UID.IsNil() {
						return errors.New("List returned a nil stream UID")
					}
					return nil
				},
			},
		},
	}
}

// DirectoryMutableSpec extends DirectorySpec with the mutating
// operations: the full abstract directory.
func DirectoryMutableSpec() Spec {
	const name = "spec-probe-entry"
	target := uid.New()
	base := DirectorySpec()
	return Spec{
		Name: "directory (full)",
		Probes: append(base.Probes, []Probe{
			{
				Name:    "AddEntry binds a fresh name",
				Op:      fsys.OpAddEntry,
				Request: func() any { return &fsys.AddEntryRequest{Name: name, Target: target} },
			},
			{
				Name:    "Lookup finds the bound name",
				Op:      fsys.OpLookup,
				Request: func() any { return &fsys.LookupRequest{Name: name} },
				Validate: func(raw any) error {
					rep, err := expect[*fsys.LookupReply](raw)
					if err != nil {
						return err
					}
					if !rep.Found || rep.Target != target {
						return fmt.Errorf("bound name resolves to %v found=%v", rep.Target, rep.Found)
					}
					return nil
				},
			},
			{
				Name:    "DeleteEntry removes it",
				Op:      fsys.OpDeleteEntry,
				Request: func() any { return &fsys.DeleteEntryRequest{Name: name} },
				Validate: func(raw any) error {
					rep, err := expect[*fsys.DeleteEntryReply](raw)
					if err != nil {
						return err
					}
					if !rep.Existed {
						return errors.New("deleted entry did not exist")
					}
					return nil
				},
			},
		}...),
	}
}

// SourceSpec is the abstract stream source: it answers Transfer on the
// given channel with OK or End — "any Eject which responds to Read
// invocations is by definition a source" (§4).
func SourceSpec(channel transput.ChannelID) Spec {
	return Spec{
		Name: "stream source",
		Probes: []Probe{
			{
				Name:    "Transfer answers with data or end-of-stream",
				Op:      transput.OpTransfer,
				Request: func() any { return &transput.TransferRequest{Channel: channel, Max: 1} },
				Validate: func(raw any) error {
					rep, err := expect[*transput.TransferReply](raw)
					if err != nil {
						return err
					}
					switch rep.Status {
					case transput.StatusOK, transput.StatusEnd:
						return nil
					default:
						return fmt.Errorf("Transfer status %v", rep.Status)
					}
				},
			},
		},
	}
}

// MapSpec is §6's random-access abstract machine.
func MapSpec() Spec {
	return Spec{
		Name: "map (random access)",
		Probes: []Probe{
			{
				Name:    "Size answers",
				Op:      fsys.OpMapSize,
				Request: func() any { return &fsys.MapSizeRequest{} },
				Validate: func(raw any) error {
					rep, err := expect[*fsys.MapSizeReply](raw)
					if err != nil {
						return err
					}
					if rep.Size < 0 {
						return fmt.Errorf("negative size %d", rep.Size)
					}
					return nil
				},
			},
			{
				Name:    "ReadAt past the end reports EOF",
				Op:      fsys.OpMapReadAt,
				Request: func() any { return &fsys.MapReadAtRequest{Offset: 1 << 40, Length: 1} },
				Validate: func(raw any) error {
					rep, err := expect[*fsys.MapReadAtReply](raw)
					if err != nil {
						return err
					}
					if !rep.EOF || len(rep.Data) != 0 {
						return fmt.Errorf("past-end read: %d bytes eof=%v", len(rep.Data), rep.EOF)
					}
					return nil
				},
			},
		},
	}
}

// NotAStreamSpec observes the *refusal* of the transput protocol —
// §6's "may not support the transput protocol at all" as a checkable
// property.
func NotAStreamSpec() Spec {
	return Spec{
		Name: "refuses stream transput",
		Probes: []Probe{
			{
				Name:    "Transfer is refused",
				Op:      transput.OpTransfer,
				Request: func() any { return &transput.TransferRequest{Channel: transput.Chan(0), Max: 1} },
				AllowError: func(err error) bool {
					return errors.Is(err, kernel.ErrNoSuchOperation)
				},
			},
		},
	}
}
