// Refcounted slab buffers.  Frames on the parallel engine's links are
// carved out of large arena chunks instead of being allocated (and
// copied) per hop.  A carve returns a *view* — a sub-slice of a chunk —
// registered in a package-global table keyed by the view's base
// pointer, so any code that ends up holding a view can Release it
// without threading a slab handle through every channel type.  Code
// that does not know whether a slice is a view calls Release or Detach
// anyway: both are tolerant no-ops on ordinary heap slices.
//
// Lifecycle rules (documented in DESIGN.md §8):
//
//   - Alloc returns a view holding one reference; Retain adds one.
//   - Release drops one reference.  A chunk recycles onto the slab's
//     free list once it is sealed (no longer being carved) and every
//     view carved from it has been released.
//   - Release/Detach must be passed the exact slice Alloc returned
//     (same base pointer); interior sub-slices are not tracked.
//   - Detach replaces "copy because someone downstream might retain
//     this": if the slice is a live view it returns an ordinary heap
//     copy and releases the view, otherwise it returns the slice
//     unchanged.  Bodies and sinks own what they are handed, so views
//     are detached at the library/user boundary and flow zero-copy
//     everywhere in between.
//   - Close seals the slab and reports how many views are still
//     outstanding — the refcount audit pipelines run at Destroy.
package wire

import (
	"sync"
	"sync/atomic"

	"asymstream/internal/metrics"
)

// DefaultChunkBytes is the arena chunk size used when NewSlab is given
// a non-positive size.
const DefaultChunkBytes = 64 * 1024

// maxFreeChunks bounds a slab's recycle list.
const maxFreeChunks = 4

type chunk struct {
	slab   *Slab
	buf    []byte
	refs   atomic.Int64 // live views carved from this chunk
	sealed atomic.Bool  // no longer the carve target
}

// viewEntry tracks one live view.  refs counts logical handles on the
// view (1 from Alloc, +1 per Retain); the chunk reference is dropped
// when the last handle goes.
type viewEntry struct {
	c    *chunk
	refs atomic.Int64
}

// views maps a view's base pointer to its entry.  Base pointers are
// unique among live views: carving always advances a chunk's offset,
// and a chunk is only re-carved after every prior view was released
// (and therefore deleted from this table).
var views sync.Map // map[*byte]*viewEntry

// Slab is an arena that carves refcounted frame buffers.  One slab is
// shared per pipeline; Alloc is safe for concurrent producers.
type Slab struct {
	chunkBytes  int
	met         *metrics.Set
	mu          sync.Mutex
	cur         *chunk
	free        []*chunk
	closed      bool
	outstanding atomic.Int64 // live views carved from this slab
}

// NewSlab returns a slab carving chunks of the given size (bytes).
// met may be nil; when set, SlabRetained/SlabReleased/SlabLeaked are
// maintained on it.
func NewSlab(met *metrics.Set, chunkBytes int) *Slab {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &Slab{chunkBytes: chunkBytes, met: met}
}

// Alloc carves an n-byte view holding one reference.  Zero-length
// requests return nil (untracked).  Requests larger than the chunk
// size get a dedicated chunk.
func (s *Slab) Alloc(n int) []byte {
	if n <= 0 {
		return nil
	}
	s.mu.Lock()
	c := s.cur
	if c == nil || len(c.buf)+n > cap(c.buf) {
		s.sealCurLocked()
		size := s.chunkBytes
		if n > size {
			size = n
		}
		if k := len(s.free); k > 0 && n <= cap(s.free[k-1].buf) {
			c = s.free[k-1]
			s.free[k-1] = nil
			s.free = s.free[:k-1]
		} else {
			c = &chunk{slab: s, buf: make([]byte, 0, size)}
		}
		s.cur = c
	}
	off := len(c.buf)
	c.buf = c.buf[:off+n]
	view := c.buf[off : off+n : off+n]
	c.refs.Add(1)
	s.mu.Unlock()

	e := &viewEntry{c: c}
	e.refs.Store(1)
	views.Store(&view[0], e)
	s.outstanding.Add(1)
	if s.met != nil {
		s.met.SlabRetained.Inc()
	}
	return view
}

func (s *Slab) sealCurLocked() {
	if c := s.cur; c != nil {
		c.sealed.Store(true)
		if c.refs.Load() == 0 {
			s.recycleLocked(c)
		}
		s.cur = nil
	}
}

func (s *Slab) recycle(c *chunk) {
	s.mu.Lock()
	s.recycleLocked(c)
	s.mu.Unlock()
}

func (s *Slab) recycleLocked(c *chunk) {
	if s.closed || len(s.free) >= maxFreeChunks {
		return // drop; the GC reclaims it
	}
	c.buf = c.buf[:0]
	c.sealed.Store(false)
	s.free = append(s.free, c)
}

// Close seals the slab and returns the number of views still
// outstanding (leaked if nobody is going to release them).  Late
// releases still work — their chunks are simply dropped to the GC
// instead of being recycled.  Close is idempotent; only the first call
// charges SlabLeaked.
func (s *Slab) Close() int64 {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.outstanding.Load()
	}
	s.closed = true
	if c := s.cur; c != nil {
		c.sealed.Store(true)
		s.cur = nil
	}
	s.free = nil
	s.mu.Unlock()
	leaked := s.outstanding.Load()
	if s.met != nil && leaked > 0 {
		s.met.SlabLeaked.Add(leaked)
	}
	return leaked
}

// Outstanding returns the number of live views carved from this slab.
func (s *Slab) Outstanding() int64 { return s.outstanding.Load() }

// IsView reports whether b is (the base of) a live slab view.
func IsView(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	_, ok := views.Load(&b[0])
	return ok
}

// Retain adds a reference to a live view.  It reports whether b was a
// view; on ordinary slices it is a no-op.
func Retain(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	v, ok := views.Load(&b[0])
	if !ok {
		return false
	}
	e := v.(*viewEntry)
	e.refs.Add(1)
	s := e.c.slab
	s.outstanding.Add(1)
	if s.met != nil {
		s.met.SlabRetained.Inc()
	}
	return true
}

// Release drops one reference from a view, recycling its chunk when it
// was the last reference on a sealed chunk.  It reports whether b was
// a live view; on ordinary slices (or an already-released view) it is
// a tolerant no-op.
func Release(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	key := &b[0]
	v, ok := views.Load(key)
	if !ok {
		return false
	}
	e := v.(*viewEntry)
	if e.refs.Add(-1) != 0 {
		s := e.c.slab
		s.outstanding.Add(-1)
		if s.met != nil {
			s.met.SlabReleased.Inc()
		}
		return true
	}
	views.Delete(key)
	c := e.c
	s := c.slab
	s.outstanding.Add(-1)
	if s.met != nil {
		s.met.SlabReleased.Inc()
	}
	if c.refs.Add(-1) == 0 && c.sealed.Load() {
		s.recycle(c)
	}
	return true
}

// ReleaseAll releases every view in items (tolerant of non-views) and
// returns how many were live views.
func ReleaseAll(items [][]byte) int {
	n := 0
	for _, it := range items {
		if Release(it) {
			n++
		}
	}
	return n
}

// RegisterSubview promotes sub — a slice of the live view owner — to a
// tracked view in its own right, holding one reference of its own on
// owner's chunk.  After registration, sub participates in the normal
// Retain/Release/Detach lifecycle independently of owner: releasing
// owner does not invalidate sub, and the chunk recycles only when both
// are gone.  This is how the transport's read loop hands frame-decoded
// item slices to ports with ownership transfer instead of a copy: the
// items alias the receive buffer, and each carries its own refcount.
//
// Preconditions (the frame layout guarantees both): sub must lie
// within owner's chunk, and sub's base pointer must not collide with
// any other live view except owner itself (frame items are disjoint
// and each is preceded by at least one length byte).  When sub shares
// owner's base pointer this degenerates to Retain(owner).  It reports
// whether owner was a live view; on ordinary slices it is a tolerant
// no-op and sub stays an untracked alias.
func RegisterSubview(owner, sub []byte) bool {
	if len(owner) == 0 || len(sub) == 0 {
		return false
	}
	v, ok := views.Load(&owner[0])
	if !ok {
		return false
	}
	e := v.(*viewEntry)
	if &owner[0] == &sub[0] {
		// Same base pointer: sub and owner share a view entry, so this
		// degenerates to an extra reference on it (Retain semantics).
		e.refs.Add(1)
	} else {
		c := e.c
		c.refs.Add(1)
		ne := &viewEntry{c: c}
		ne.refs.Store(1)
		views.Store(&sub[0], ne)
	}
	s := e.c.slab
	s.outstanding.Add(1)
	if s.met != nil {
		s.met.SlabRetained.Inc()
	}
	return true
}

// Detach converts b into an ordinary heap slice the caller owns
// outright.  If b is a live view the bytes are copied out and the view
// released; otherwise b is returned unchanged.  This is the one copy
// the data plane still pays, at the boundary where items leave
// library-controlled lifetimes (user bodies, collecting sinks).
func Detach(b []byte) []byte {
	if len(b) == 0 || !IsView(b) {
		return b
	}
	out := append([]byte(nil), b...)
	Release(b)
	return out
}
