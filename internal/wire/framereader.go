// FrameReader: the read side of a real wire.  A socket hands the codec
// an io.Reader that fragments frames arbitrarily — short reads, frames
// split across reads, several frames in one read — so this file adds
// the re-assembly layer Decode never needed in-process: a slab-backed
// buffer filled by Read, parsed frame by frame, with the partial tail
// carried across buffer rotations.
//
// The zero-copy contract: bytes land in a tracked slab view and are
// decoded in place.  Records registered with RegisterView may return
// values whose byte fields alias the buffer; they register each such
// field as a sub-view (RegisterSubview) so it holds its own reference
// on the chunk and rides the normal Release/Detach lifecycle.  The
// reader releases its own handle on a buffer when it rotates to a
// fresh one; the chunk itself stays alive until the last item view is
// released by whoever the ports handed it to.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxFrameBytes bounds a single frame's payload so a corrupt or
// hostile length prefix cannot trigger an enormous allocation.  Far
// above any legitimate batch (64 KiB chunks × the protocol's batch
// ceilings).
const MaxFrameBytes = 1 << 26

// ErrFrameTooLarge reports a length prefix above MaxFrameBytes.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameBytes")

// ViewDecodeFunc rebuilds a record from a frame payload *in place*:
// the returned value may alias payload.  owner is the live slab view
// containing payload; implementations register every aliasing byte
// field with RegisterSubview(owner, field) so each carries its own
// reference.  Non-aliasing fields (strings, scalars) are decoded as
// usual.
type ViewDecodeFunc func(payload, owner []byte) (any, error)

var (
	viewRegMu    sync.RWMutex
	viewDecoders = make(map[uint16]ViewDecodeFunc)
)

// RegisterView installs the in-place decoder for a record id already
// registered with Register.  Frames decoded through DecodeViewIn use
// it; Decode keeps using the copying decoder, so existing callers are
// unaffected.  Panics on a duplicate id.
func RegisterView(id uint16, dec ViewDecodeFunc) {
	viewRegMu.Lock()
	defer viewRegMu.Unlock()
	if _, ok := viewDecoders[id]; ok {
		panic(fmt.Sprintf("wire: view decoder for record id %d registered twice", id))
	}
	viewDecoders[id] = dec
}

func lookupViewDecoder(id uint16) (ViewDecodeFunc, bool) {
	viewRegMu.RLock()
	d, ok := viewDecoders[id]
	viewRegMu.RUnlock()
	return d, ok
}

// DecodeViewIn parses one frame from the front of b like Decode, but
// TagRecord frames whose id has a RegisterView decoder are decoded in
// place: the returned value may alias b, with aliasing fields
// registered as sub-views of owner (the live slab view containing b).
// Every other frame shape falls back to the copying Decode.
func DecodeViewIn(b, owner []byte) (any, int, error) {
	if len(b) < HeaderBytes {
		return nil, 0, ErrTruncated
	}
	if b[0] == TagRecord {
		n := int(binary.BigEndian.Uint32(b[1:HeaderBytes]))
		if n < 0 || n > len(b)-HeaderBytes {
			return nil, 0, ErrTruncated
		}
		payload := b[HeaderBytes : HeaderBytes+n]
		id, k := binary.Uvarint(payload)
		if k <= 0 || id > 0xFFFF {
			return nil, 0, fmt.Errorf("%w: record id varint", ErrMalformed)
		}
		if dec, ok := lookupViewDecoder(uint16(id)); ok {
			v, err := dec(payload[k:], owner)
			if err != nil {
				return nil, 0, err
			}
			return v, HeaderBytes + n, nil
		}
	}
	return Decode(b)
}

// ReadItemsFieldView parses an item vector like ReadItemsField but
// zero-copy: every item is a sub-slice of b, registered as a tracked
// sub-view of owner (empty items stay untracked nils).  On error the
// views already registered are released, so a malformed frame leaks
// nothing.
func ReadItemsFieldView(b, owner []byte) ([][]byte, int, error) {
	count, k, err := ReadUvarintField(b)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(b)) { // each item needs ≥1 length byte
		return nil, 0, fmt.Errorf("%w: item count %d exceeds payload", ErrMalformed, count)
	}
	items := make([][]byte, 0, count)
	off := k
	for i := uint64(0); i < count; i++ {
		n, kk, err := ReadUvarintField(b[off:])
		if err != nil {
			ReleaseAll(items)
			return nil, 0, err
		}
		if uint64(len(b)-off-kk) < n {
			ReleaseAll(items)
			return nil, 0, fmt.Errorf("%w: short bytes field", ErrTruncated)
		}
		start := off + kk
		end := start + int(n)
		var it []byte
		if n > 0 {
			it = b[start:end:end]
			RegisterSubview(owner, it)
		}
		items = append(items, it)
		off = end
	}
	return items, off, nil
}

// FrameReader re-assembles wire frames from an io.Reader with
// short-read tolerance and decodes them in place from a slab-backed
// buffer.  Not safe for concurrent use; a transport runs one per
// connection direction.
type FrameReader struct {
	r       io.Reader
	slab    *Slab
	ownSlab bool
	buf     []byte // current tracked slab view (nil before first read)
	start   int    // parse cursor within buf
	end     int    // filled bytes within buf
}

// NewFrameReader wraps r.  Frames are decoded from views carved out of
// slab; a nil slab gets a private, unmetered one (closed by Close).
// chunkBytes sizes the receive buffer (<=0 means DefaultChunkBytes).
func NewFrameReader(r io.Reader, slab *Slab, chunkBytes int) *FrameReader {
	own := false
	if slab == nil {
		slab = NewSlab(nil, chunkBytes)
		own = true
	}
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &FrameReader{r: r, slab: slab, ownSlab: own}
}

// Next reads, re-assembles and decodes the next frame, returning the
// decoded value and the frame's size on the wire (header + payload).
// A clean end of stream at a frame boundary returns io.EOF; an end of
// stream mid-frame returns io.ErrUnexpectedEOF.  Values from records
// with view decoders may hold slab views the caller now owns.
func (fr *FrameReader) Next() (any, int, error) {
	if err := fr.ensure(HeaderBytes); err != nil {
		return nil, 0, err
	}
	n := int(binary.BigEndian.Uint32(fr.buf[fr.start+1 : fr.start+HeaderBytes]))
	if n > MaxFrameBytes {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	total := HeaderBytes + n
	if err := fr.ensure(total); err != nil {
		return nil, 0, err
	}
	v, k, err := DecodeViewIn(fr.buf[fr.start:fr.start+total], fr.buf)
	if err != nil {
		return nil, 0, err
	}
	fr.start += k
	return v, k, nil
}

// ensure makes at least n unparsed bytes available at fr.start,
// rotating to a fresh buffer when the current one cannot hold them.
// Consumed bytes before fr.start are never reclaimed in place — item
// views may alias them — so rotation is the only recycling.
func (fr *FrameReader) ensure(n int) error {
	for fr.end-fr.start < n {
		if fr.buf == nil || fr.start+n > len(fr.buf) {
			fr.rotate(n)
		}
		m, err := fr.r.Read(fr.buf[fr.end:])
		fr.end += m
		if fr.end-fr.start >= n {
			return nil
		}
		if err != nil {
			if err == io.EOF {
				if fr.end == fr.start {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
		if m == 0 {
			return io.ErrNoProgress
		}
	}
	return nil
}

// rotate moves the unparsed tail into a fresh slab view with room for
// at least need bytes, releasing the reader's handle on the old one.
// Sub-views handed out from the old buffer keep its chunk alive.
func (fr *FrameReader) rotate(need int) {
	size := fr.slab.chunkBytes
	if size <= 0 {
		size = DefaultChunkBytes
	}
	if need > size {
		size = need
	}
	nb := fr.slab.Alloc(size)
	tail := 0
	if fr.buf != nil {
		tail = copy(nb, fr.buf[fr.start:fr.end])
		Release(fr.buf)
	}
	fr.buf = nb
	fr.start = 0
	fr.end = tail
}

// Close releases the reader's buffer view (and its private slab, when
// it owns one).  Item views already handed out stay valid.
func (fr *FrameReader) Close() {
	if fr.buf != nil {
		Release(fr.buf)
		fr.buf = nil
	}
	if fr.ownSlab {
		fr.slab.Close()
	}
	fr.start, fr.end = 0, 0
}
