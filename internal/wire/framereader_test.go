package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"asymstream/internal/metrics"
)

// viewRecID is a record with both a copying and an in-place decoder,
// so decode equivalence across the two paths is testable: one [][]byte
// field (aliasing under the view decoder) and one varint.
const viewRecID = 101

type viewRec struct {
	Items [][]byte
	Seq   int64
}

func (r *viewRec) WireID() uint16 { return viewRecID }

func (r *viewRec) AppendWire(dst []byte) ([]byte, error) {
	dst = AppendItemsField(dst, r.Items)
	return AppendVarintField(dst, r.Seq), nil
}

func decodeViewRecFrom(items [][]byte, rest []byte) (any, error) {
	seq, _, err := ReadVarintField(rest)
	if err != nil {
		ReleaseAll(items)
		return nil, err
	}
	return &viewRec{Items: items, Seq: seq}, nil
}

func init() {
	Register(viewRecID, "wire.viewRec", func(payload []byte) (any, error) {
		items, k, err := ReadItemsField(payload)
		if err != nil {
			return nil, err
		}
		return decodeViewRecFrom(items, payload[k:])
	})
	RegisterView(viewRecID, func(payload, owner []byte) (any, error) {
		items, k, err := ReadItemsFieldView(payload, owner)
		if err != nil {
			return nil, err
		}
		return decodeViewRecFrom(items, payload[k:])
	})
}

// chunkedReader serves a byte stream in caller-chosen cut sizes,
// simulating a socket that tears frames across arbitrary reads.
type chunkedReader struct {
	data []byte
	cuts []byte // successive read sizes; 0 entries read 1 byte
	pos  int
	turn int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if c.pos >= len(c.data) {
		return 0, io.EOF
	}
	n := 1
	if len(c.cuts) > 0 {
		n = int(c.cuts[c.turn%len(c.cuts)])
		c.turn++
		if n <= 0 {
			n = 1
		}
	}
	if n > len(p) {
		n = len(p)
	}
	if rem := len(c.data) - c.pos; n > rem {
		n = rem
	}
	copy(p, c.data[c.pos:c.pos+n])
	c.pos += n
	return n, nil
}

// encodeStream concatenates the test frames every torn-read test
// parses back.
func encodeStream(t testing.TB) ([]byte, []any) {
	t.Helper()
	vals := []any{
		[]byte("alpha"),
		"grüße",
		int64(-1983),
		[][]byte{[]byte("a"), {}, []byte("line\n")},
		&viewRec{Items: [][]byte{[]byte("x"), []byte("yy")}, Seq: 7},
		[]byte(bytes.Repeat([]byte("Z"), 300)), // bigger than tiny chunks
	}
	var stream []byte
	for _, v := range vals {
		enc, err := Append(stream, v)
		if err != nil {
			t.Fatalf("Append(%v): %v", v, err)
		}
		stream = enc
	}
	return stream, vals
}

// canon normalises a decoded value for comparison across the copying
// and view decode paths (views detach to plain bytes; empty items and
// nil items compare equal).
func canon(v any) string {
	switch x := v.(type) {
	case []byte:
		return fmt.Sprintf("b:%q", x)
	case [][]byte:
		s := "v:"
		for _, it := range x {
			s += fmt.Sprintf("%q,", it)
		}
		return s
	case *viewRec:
		return fmt.Sprintf("r:%d:%s", x.Seq, canon(x.Items))
	default:
		return fmt.Sprintf("%T:%v", v, v)
	}
}

// releaseDecoded drops any slab views a decoded value carries.
func releaseDecoded(v any) {
	switch x := v.(type) {
	case [][]byte:
		ReleaseAll(x)
	case *viewRec:
		ReleaseAll(x.Items)
	}
}

func TestFrameReaderTornReads(t *testing.T) {
	stream, vals := encodeStream(t)
	for _, cuts := range [][]byte{nil, {1}, {2}, {3, 1, 7}, {64}, {255}} {
		met := &metrics.Set{}
		slab := NewSlab(met, 128) // far smaller than the stream: forces rotation
		fr := NewFrameReader(&chunkedReader{data: stream, cuts: cuts}, slab, 128)
		var wire int
		for i, want := range vals {
			v, n, err := fr.Next()
			if err != nil {
				t.Fatalf("cuts %v: frame %d: %v", cuts, i, err)
			}
			if got, w := canon(v), canon(want); got != w {
				t.Fatalf("cuts %v: frame %d: got %s want %s", cuts, i, got, w)
			}
			wire += n
			releaseDecoded(v)
		}
		if wire != len(stream) {
			t.Fatalf("cuts %v: consumed %d wire bytes, stream is %d", cuts, wire, len(stream))
		}
		if _, _, err := fr.Next(); err != io.EOF {
			t.Fatalf("cuts %v: want io.EOF at end, got %v", cuts, err)
		}
		fr.Close()
		if leaked := slab.Close(); leaked != 0 {
			t.Fatalf("cuts %v: slab leaked %d views", cuts, leaked)
		}
	}
}

// TestFrameReaderViewsSurviveRotation pins the zero-copy contract: an
// item view handed out stays valid (and owns its chunk) after the
// reader rotates to fresh buffers and even after the reader closes.
func TestFrameReaderViewsSurviveRotation(t *testing.T) {
	var stream []byte
	first := &viewRec{Items: [][]byte{[]byte("keepme")}, Seq: 1}
	enc, err := Append(nil, first)
	if err != nil {
		t.Fatal(err)
	}
	stream = enc
	// Enough follow-on data to force several 128-byte rotations.
	for i := 0; i < 8; i++ {
		if stream, err = Append(stream, bytes.Repeat([]byte{byte('a' + i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	met := &metrics.Set{}
	slab := NewSlab(met, 128)
	fr := NewFrameReader(&chunkedReader{data: stream, cuts: []byte{5}}, slab, 128)
	v, _, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	rec := v.(*viewRec)
	if !IsView(rec.Items[0]) {
		t.Fatal("view decoder returned a non-view item")
	}
	for {
		w, _, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		releaseDecoded(w)
	}
	fr.Close()
	if string(rec.Items[0]) != "keepme" {
		t.Fatalf("view corrupted after rotation/close: %q", rec.Items[0])
	}
	ReleaseAll(rec.Items)
	if leaked := slab.Close(); leaked != 0 {
		t.Fatalf("slab leaked %d views", leaked)
	}
}

func TestFrameReaderErrors(t *testing.T) {
	stream, _ := encodeStream(t)

	// Mid-frame end of stream.
	fr := NewFrameReader(&chunkedReader{data: stream[:len(stream)-3]}, nil, 0)
	for {
		v, _, err := fr.Next()
		if err != nil {
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("truncated stream: want io.ErrUnexpectedEOF, got %v", err)
			}
			break
		}
		releaseDecoded(v)
	}
	fr.Close()

	// A length prefix above MaxFrameBytes fails before allocating.
	huge := []byte{TagBytes, 0xFF, 0xFF, 0xFF, 0xFF}
	fr = NewFrameReader(bytes.NewReader(huge), nil, 0)
	if _, _, err := fr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	fr.Close()

	// Empty stream is a clean EOF.
	fr = NewFrameReader(bytes.NewReader(nil), nil, 0)
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF on empty stream, got %v", err)
	}
	fr.Close()
}

// FuzzFrameReader is the stream-reassembly fuzzer: arbitrary bytes,
// torn at arbitrary read boundaries, must decode to exactly the frame
// sequence the in-process Decode sees on the same bytes — and must
// never panic or leak a slab view, whatever the input.
func FuzzFrameReader(f *testing.F) {
	stream, _ := encodeStream(f)
	f.Add(stream, []byte{1})
	f.Add(stream, []byte{3, 1, 7})
	f.Add(stream[:len(stream)-2], []byte{64})
	f.Add([]byte{TagBytes, 0xFF, 0xFF, 0xFF, 0xFF, 'x'}, []byte{2})
	f.Add([]byte{TagRecord, 0, 0, 0, 2, viewRecID, 0x00}, []byte{1, 2})
	f.Fuzz(func(t *testing.T, data, cuts []byte) {
		// Reference: frame-by-frame copying Decode over the whole
		// buffer, stopping at the first error.
		var want []string
		off := 0
		for off < len(data) {
			v, n, err := Decode(data[off:])
			if err != nil {
				break
			}
			want = append(want, canon(v))
			off += n
		}

		met := &metrics.Set{}
		slab := NewSlab(met, 256)
		fr := NewFrameReader(&chunkedReader{data: data, cuts: cuts}, slab, 256)
		for i := 0; ; i++ {
			v, n, err := fr.Next()
			if err != nil {
				// The reassembled stream may legitimately fail where
				// the reference did (or later at the torn tail), but
				// it must never decode fewer clean frames.
				if i < len(want) {
					t.Fatalf("frame %d: reference decoded it, reader failed: %v", i, err)
				}
				break
			}
			if i >= len(want) {
				// A frame the reference rejected must not decode; the
				// only excuse is the reference stopping on a frame
				// whose MaxFrameBytes guard tripped differently.
				releaseDecoded(v)
				t.Fatalf("frame %d: reader decoded a frame the reference rejected", i)
			}
			if got := canon(v); got != want[i] {
				t.Fatalf("frame %d: got %s want %s", i, got, want[i])
			}
			if n < HeaderBytes {
				t.Fatalf("frame %d: consumed %d < header", i, n)
			}
			releaseDecoded(v)
		}
		fr.Close()
		if leaked := slab.Close(); leaked != 0 {
			t.Fatalf("slab leaked %d views", leaked)
		}
	})
}
