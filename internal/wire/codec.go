// Package wire is the compact binary codec and buffer arena of the
// zero-copy data plane.  Every payload that crosses a simulated node
// boundary (netsim.EncodePayloads) and every record framed into a
// stream item (transput/records.go) moves through this package instead
// of opening a fresh gob stream.
//
// A frame is
//
//	[tag:1][length:4 big-endian][payload:length]
//
// The fixed 4-byte length field lets encoders append the payload first
// and backfill the length, so nothing is encoded twice and nothing is
// staged in a temporary buffer.  Tags cover the payload shapes the
// pipelines actually ship — []byte, string, int64, [][]byte and the
// registered protocol records — with gob surviving only as the tagged
// fallback for unregistered Go types.
//
// Decode never panics: truncated frames, malformed varints, foreign
// tags and unregistered record ids all return errors, which is what the
// fuzz target pins.  Decoded values never alias the input buffer; the
// caller may recycle it immediately.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// Frame tags.  The zero tag is deliberately invalid so an all-zero
// buffer decodes to an error, not an empty value.
const (
	TagBytes      = 1 // payload is the byte slice verbatim
	TagString     = 2 // payload is the string bytes verbatim
	TagInt64      = 3 // payload is a signed varint
	TagByteSlices = 4 // uvarint count, then per-item uvarint length + bytes
	TagRecord     = 5 // uvarint type id, then the record's own encoding
	TagGob        = 6 // gob stream of a single `any` (fallback)
)

// HeaderBytes is the fixed per-frame overhead: 1 tag byte plus a 4-byte
// big-endian payload length.
const HeaderBytes = 5

var (
	// ErrTruncated reports a buffer that ends before the frame does.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrMalformed reports a frame whose payload does not parse under
	// its tag (bad varint, short field, trailing garbage).
	ErrMalformed = errors.New("wire: malformed frame")
	// ErrUnknownTag reports a frame whose tag byte is not one this
	// package emits.
	ErrUnknownTag = errors.New("wire: unknown frame tag")
	// ErrUnknownType reports a TagRecord frame whose type id has no
	// registered decoder in this process.
	ErrUnknownType = errors.New("wire: unregistered record type")
)

// Marshaler is implemented by records that know their own compact
// encoding.  AppendWire appends the record body (no frame header) to
// dst and returns the extended slice.
type Marshaler interface {
	WireID() uint16
	AppendWire(dst []byte) ([]byte, error)
}

// DecodeFunc rebuilds a record value from the body AppendWire produced.
// The returned value must not alias payload.
type DecodeFunc func(payload []byte) (any, error)

var (
	regMu    sync.RWMutex
	decoders = make(map[uint16]registration)
)

type registration struct {
	name string
	dec  DecodeFunc
}

// Register installs the decoder for a record type id.  It panics on a
// duplicate id, which would be a build-time wiring mistake.  Packages
// register their records in init; the indirection keeps this package
// free of imports of the packages whose records it carries.
func Register(id uint16, name string, dec DecodeFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := decoders[id]; ok {
		panic(fmt.Sprintf("wire: record id %d registered twice (%s, %s)", id, prev.name, name))
	}
	decoders[id] = registration{name: name, dec: dec}
}

func lookupDecoder(id uint16) (DecodeFunc, bool) {
	regMu.RLock()
	r, ok := decoders[id]
	regMu.RUnlock()
	return r.dec, ok
}

// appendHeader appends a frame header with a known payload length.
func appendHeader(dst []byte, tag byte, n int) []byte {
	return append(dst, tag, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
}

// openFrame appends a header with a zero length to be backfilled by
// closeFrame once the payload has been appended.  It returns the offset
// of the header.
func openFrame(dst []byte, tag byte) ([]byte, int) {
	start := len(dst)
	return append(dst, tag, 0, 0, 0, 0), start
}

func closeFrame(dst []byte, start int) []byte {
	n := len(dst) - start - HeaderBytes
	binary.BigEndian.PutUint32(dst[start+1:start+HeaderBytes], uint32(n))
	return dst
}

// Append encodes v as one frame appended to dst.  Fast paths cover
// []byte, string, int64, [][]byte and Marshaler records; anything else
// rides the gob fallback inside a TagGob frame.  On error dst is
// returned truncated to its original length.
func Append(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case []byte:
		dst = appendHeader(dst, TagBytes, len(x))
		return append(dst, x...), nil
	case string:
		dst = appendHeader(dst, TagString, len(x))
		return append(dst, x...), nil
	case int64:
		dst, start := openFrame(dst, TagInt64)
		dst = binary.AppendVarint(dst, x)
		return closeFrame(dst, start), nil
	case [][]byte:
		dst, start := openFrame(dst, TagByteSlices)
		dst = AppendItemsField(dst, x)
		return closeFrame(dst, start), nil
	}
	if m, ok := v.(Marshaler); ok {
		dst, start := openFrame(dst, TagRecord)
		dst = binary.AppendUvarint(dst, uint64(m.WireID()))
		out, err := m.AppendWire(dst)
		if err != nil {
			return dst[:start], err
		}
		return closeFrame(out, start), nil
	}
	return appendGob(dst, v)
}

// appendGob is the fallback kept out of Append's body: gob's Encode
// takes the value's address, and doing that inline would move Append's
// parameter to the heap on every call — one hidden allocation per frame
// even on the fast paths.
func appendGob(dst []byte, v any) ([]byte, error) {
	start := len(dst)
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	err := gob.NewEncoder(buf).Encode(&v)
	if err != nil {
		gobBufPool.Put(buf)
		return dst[:start], err
	}
	dst = appendHeader(dst, TagGob, buf.Len())
	dst = append(dst, buf.Bytes()...)
	gobBufPool.Put(buf)
	return dst, nil
}

// Decode parses one frame from the front of b, returning the decoded
// value and the number of bytes consumed.  The value never aliases b.
func Decode(b []byte) (any, int, error) {
	if len(b) < HeaderBytes {
		return nil, 0, ErrTruncated
	}
	tag := b[0]
	n := int(binary.BigEndian.Uint32(b[1:HeaderBytes]))
	if n < 0 || n > len(b)-HeaderBytes {
		return nil, 0, ErrTruncated
	}
	payload := b[HeaderBytes : HeaderBytes+n]
	total := HeaderBytes + n
	switch tag {
	case TagBytes:
		return append([]byte(nil), payload...), total, nil
	case TagString:
		return string(payload), total, nil
	case TagInt64:
		v, k := binary.Varint(payload)
		if k <= 0 || k != len(payload) {
			return nil, 0, fmt.Errorf("%w: int64 varint", ErrMalformed)
		}
		return v, total, nil
	case TagByteSlices:
		items, k, err := ReadItemsField(payload)
		if err != nil {
			return nil, 0, err
		}
		if k != len(payload) {
			return nil, 0, fmt.Errorf("%w: trailing bytes after item vector", ErrMalformed)
		}
		return items, total, nil
	case TagRecord:
		id, k := binary.Uvarint(payload)
		if k <= 0 || id > 0xFFFF {
			return nil, 0, fmt.Errorf("%w: record id varint", ErrMalformed)
		}
		dec, ok := lookupDecoder(uint16(id))
		if !ok {
			return nil, 0, fmt.Errorf("%w: id %d", ErrUnknownType, id)
		}
		v, err := dec(payload[k:])
		if err != nil {
			return nil, 0, err
		}
		return v, total, nil
	case TagGob:
		var v any
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&v); err != nil {
			return nil, 0, fmt.Errorf("%w: gob fallback: %v", ErrMalformed, err)
		}
		return v, total, nil
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
}

// --- field helpers for Marshaler implementations -------------------

// AppendUvarintField appends v as an unsigned varint.
func AppendUvarintField(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// ReadUvarintField reads an unsigned varint from the front of b.
func ReadUvarintField(b []byte) (uint64, int, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, 0, fmt.Errorf("%w: uvarint field", ErrMalformed)
	}
	return v, k, nil
}

// AppendVarintField appends v as a signed varint.
func AppendVarintField(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// ReadVarintField reads a signed varint from the front of b.
func ReadVarintField(b []byte) (int64, int, error) {
	v, k := binary.Varint(b)
	if k <= 0 {
		return 0, 0, fmt.Errorf("%w: varint field", ErrMalformed)
	}
	return v, k, nil
}

// AppendBytesField appends a length-prefixed byte field.
func AppendBytesField(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ReadBytesField reads a length-prefixed byte field.  The returned
// slice is a fresh copy, never a view of b.
func ReadBytesField(b []byte) ([]byte, int, error) {
	n, k, err := ReadUvarintField(b)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(b)-k) < n {
		return nil, 0, fmt.Errorf("%w: short bytes field", ErrTruncated)
	}
	end := k + int(n)
	return append([]byte(nil), b[k:end]...), end, nil
}

// AppendStringField appends a length-prefixed string field.
func AppendStringField(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadStringField reads a length-prefixed string field.
func ReadStringField(b []byte) (string, int, error) {
	n, k, err := ReadUvarintField(b)
	if err != nil {
		return "", 0, err
	}
	if uint64(len(b)-k) < n {
		return "", 0, fmt.Errorf("%w: short string field", ErrTruncated)
	}
	end := k + int(n)
	return string(b[k:end]), end, nil
}

// AppendItemsField appends a vector of byte slices: uvarint count, then
// per-item uvarint length + bytes.  This is the honest on-wire shape of
// a batched payload — every item pays its own header.
func AppendItemsField(dst []byte, items [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for _, it := range items {
		dst = binary.AppendUvarint(dst, uint64(len(it)))
		dst = append(dst, it...)
	}
	return dst
}

// ReadItemsField reads a vector of byte slices.  Every item is a fresh
// copy.
func ReadItemsField(b []byte) ([][]byte, int, error) {
	count, k, err := ReadUvarintField(b)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(b)) { // each item needs ≥1 length byte
		return nil, 0, fmt.Errorf("%w: item count %d exceeds payload", ErrMalformed, count)
	}
	items := make([][]byte, 0, count)
	off := k
	for i := uint64(0); i < count; i++ {
		it, n, err := ReadBytesField(b[off:])
		if err != nil {
			return nil, 0, err
		}
		items = append(items, it)
		off += n
	}
	return items, off, nil
}

// ItemsFieldSize returns the encoded size of AppendItemsField(items)
// without encoding it — used by netsim's on-wire byte accounting.
func ItemsFieldSize(items [][]byte) int {
	n := uvarintLen(uint64(len(items)))
	for _, it := range items {
		n += uvarintLen(uint64(len(it))) + len(it)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// --- pooled scratch ------------------------------------------------

// encode scratch buffers, recycled across frames so steady-state
// encoding allocates nothing.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// GetBuf borrows an empty scratch buffer from the pool.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a scratch buffer to the pool.  Oversized buffers are
// dropped so one huge payload does not pin memory forever.
func PutBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
