package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"
)

// testRec exercises the Marshaler/Register path without importing the
// transput package (which imports this one).
type testRec struct {
	A int64
	B string
}

const testRecID = 100

func (r *testRec) WireID() uint16 { return testRecID }

func (r *testRec) AppendWire(dst []byte) ([]byte, error) {
	dst = AppendVarintField(dst, r.A)
	dst = AppendStringField(dst, r.B)
	return dst, nil
}

func init() {
	Register(testRecID, "wire.testRec", func(payload []byte) (any, error) {
		r := &testRec{}
		a, k, err := ReadVarintField(payload)
		if err != nil {
			return nil, err
		}
		b, _, err := ReadStringField(payload[k:])
		if err != nil {
			return nil, err
		}
		r.A, r.B = a, b
		return r, nil
	})
}

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	enc, err := Append(nil, v)
	if err != nil {
		t.Fatalf("Append(%v): %v", v, err)
	}
	got, n, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode(%v): %v", v, err)
	}
	if n != len(enc) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	if got := roundTrip(t, []byte("hello")).([]byte); string(got) != "hello" {
		t.Errorf("bytes: %q", got)
	}
	if got := roundTrip(t, []byte{}).([]byte); len(got) != 0 {
		t.Errorf("empty bytes: %q", got)
	}
	if got := roundTrip(t, "grüße").(string); got != "grüße" {
		t.Errorf("string: %q", got)
	}
	for _, v := range []int64{0, 1, -1, 1983, -1983, 1 << 62, -(1 << 62)} {
		if got := roundTrip(t, v).(int64); got != v {
			t.Errorf("int64 %d: %d", v, got)
		}
	}
}

func TestRoundTripByteSlices(t *testing.T) {
	in := [][]byte{[]byte("a"), {}, []byte("line 2\n"), []byte("ccc")}
	got := roundTrip(t, in).([][]byte)
	if len(got) != len(in) {
		t.Fatalf("len = %d, want %d", len(got), len(in))
	}
	for i := range in {
		if !bytes.Equal(got[i], in[i]) {
			t.Errorf("item %d: %q, want %q", i, got[i], in[i])
		}
	}
}

func TestRoundTripRecord(t *testing.T) {
	in := &testRec{A: -7, B: "record"}
	got, ok := roundTrip(t, in).(*testRec)
	if !ok || got.A != in.A || got.B != in.B {
		t.Fatalf("record round trip: %+v", got)
	}
	if got == in {
		t.Error("decode must build a fresh record")
	}
}

type blob struct{ X, Y int }

func init() { gob.Register(blob{}) }

func TestRoundTripGobFallback(t *testing.T) {
	enc, err := Append(nil, blob{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != TagGob {
		t.Fatalf("fallback tag = %d, want TagGob", enc[0])
	}
	got, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := got.(blob); !ok || b != (blob{3, 4}) {
		t.Fatalf("gob fallback: %#v", got)
	}
}

// TestDecodeNeverAliases pins the "caller may recycle the input
// immediately" contract.
func TestDecodeNeverAliases(t *testing.T) {
	enc, _ := Append(nil, []byte("aliased?"))
	got, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	b := got.([]byte)
	for i := range enc {
		enc[i] = 0xFF
	}
	if string(b) != "aliased?" {
		t.Error("decoded bytes alias the input buffer")
	}

	enc2, _ := Append(nil, [][]byte{[]byte("one"), []byte("two")})
	got2, _, err := Decode(enc2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc2 {
		enc2[i] = 0xFF
	}
	items := got2.([][]byte)
	if string(items[0]) != "one" || string(items[1]) != "two" {
		t.Error("decoded items alias the input buffer")
	}
}

// TestFrameSizePinned pins the honest on-wire sizes the benchmarks and
// netsim accounting rely on.
func TestFrameSizePinned(t *testing.T) {
	payload := []byte("0123456789")
	enc, _ := Append(nil, payload)
	if len(enc) != HeaderBytes+len(payload) {
		t.Errorf("bytes frame = %d, want %d", len(enc), HeaderBytes+len(payload))
	}
	items := [][]byte{[]byte("ab"), []byte("cdef")}
	enc2, _ := Append(nil, items)
	if len(enc2) != HeaderBytes+ItemsFieldSize(items) {
		t.Errorf("items frame = %d, want %d", len(enc2), HeaderBytes+ItemsFieldSize(items))
	}
	// uvarint count 2 + (1+2) + (1+4) = 9 payload bytes.
	if ItemsFieldSize(items) != 9 {
		t.Errorf("ItemsFieldSize = %d, want 9", ItemsFieldSize(items))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", []byte{TagBytes, 0}, ErrTruncated},
		{"length past end", []byte{TagBytes, 0, 0, 0, 9, 'x'}, ErrTruncated},
		{"zero tag", make([]byte, 16), ErrUnknownTag},
		{"foreign tag", []byte{0x7F, 0, 0, 0, 0}, ErrUnknownTag},
		{"empty int64", []byte{TagInt64, 0, 0, 0, 0}, ErrMalformed},
		{"trailing int64", []byte{TagInt64, 0, 0, 0, 3, 2, 0, 0}, ErrMalformed},
		{"unregistered record", []byte{TagRecord, 0, 0, 0, 2, 0xFE, 0x7F}, ErrUnknownType},
		{"garbage gob", []byte{TagGob, 0, 0, 0, 2, 0xde, 0xad}, ErrMalformed},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestTruncationsError feeds every prefix of valid frames to Decode:
// all must error (never panic, never succeed short).
func TestTruncationsError(t *testing.T) {
	for _, v := range []any{[]byte("payload"), "str", int64(-99),
		[][]byte{[]byte("a"), []byte("bb")}, &testRec{A: 5, B: "x"}} {
		enc, err := Append(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(enc); i++ {
			if _, _, err := Decode(enc[:i]); err == nil {
				t.Errorf("%T: %d-byte prefix decoded", v, i)
			}
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(testRecID, "dup", func([]byte) (any, error) { return nil, nil })
}

// TestAllocCeilings pins the allocation behaviour of the hot paths:
// encoding into a buffer with capacity is allocation-free, and decoding
// costs only the output value itself.
func TestAllocCeilings(t *testing.T) {
	payload := []byte("a modest line of pipeline data\n")
	var boxed any = payload // box once; the hot paths pass pre-boxed payloads
	dst := make([]byte, 0, 1024)
	if n := testing.AllocsPerRun(200, func() {
		if _, err := Append(dst[:0], boxed); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("Append([]byte) allocates %.1f/op, want 0", n)
	}
	enc, _ := Append(nil, payload)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := Decode(enc); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Errorf("Decode(bytes) allocates %.1f/op, want <=2 (copy + boxing)", n)
	}
	encInt, _ := Append(nil, int64(7))
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := Decode(encInt); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("Decode(int64) allocates %.1f/op, want <=1 (boxing)", n)
	}
}

func ExampleAppend() {
	enc, _ := Append(nil, []byte("hi"))
	v, n, _ := Decode(enc)
	fmt.Printf("%q %d\n", v, n)
	// Output: "hi" 7
}
