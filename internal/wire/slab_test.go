package wire

import (
	"bytes"
	"sync"
	"testing"

	"asymstream/internal/metrics"
)

func TestSlabAllocRelease(t *testing.T) {
	met := &metrics.Set{}
	s := NewSlab(met, 0)
	v := s.Alloc(16)
	if len(v) != 16 {
		t.Fatalf("len = %d", len(v))
	}
	if !IsView(v) {
		t.Fatal("Alloc result is not a view")
	}
	if s.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
	if !Release(v) {
		t.Fatal("Release returned false for a live view")
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding after release = %d", s.Outstanding())
	}
	if Release(v) {
		t.Fatal("double Release reported a live view")
	}
	if met.SlabRetained.Value() != 1 || met.SlabReleased.Value() != 1 {
		t.Errorf("retained/released = %d/%d, want 1/1",
			met.SlabRetained.Value(), met.SlabReleased.Value())
	}
	if leaked := s.Close(); leaked != 0 {
		t.Errorf("leaked = %d", leaked)
	}
}

func TestSlabZeroLengthAndForeignSlices(t *testing.T) {
	s := NewSlab(nil, 0)
	defer s.Close()
	if v := s.Alloc(0); v != nil {
		t.Error("Alloc(0) must return nil")
	}
	plain := []byte("not a view")
	if IsView(plain) || Retain(plain) || Release(plain) {
		t.Error("ordinary slices must be no-ops")
	}
	if got := Detach(plain); &got[0] != &plain[0] {
		t.Error("Detach must pass ordinary slices through")
	}
}

func TestSlabRetainAddsHandle(t *testing.T) {
	s := NewSlab(nil, 0)
	defer s.Close()
	v := s.Alloc(8)
	if !Retain(v) {
		t.Fatal("Retain returned false")
	}
	if s.Outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", s.Outstanding())
	}
	Release(v)
	if !IsView(v) {
		t.Fatal("view vanished while a handle remained")
	}
	Release(v)
	if IsView(v) {
		t.Fatal("view survived its last release")
	}
}

func TestSlabDetachCopies(t *testing.T) {
	s := NewSlab(nil, 0)
	defer s.Close()
	v := s.Alloc(4)
	copy(v, "data")
	out := Detach(v)
	if IsView(out) || &out[0] == &v[0] {
		t.Fatal("Detach must copy out of the arena")
	}
	if !bytes.Equal(out, []byte("data")) {
		t.Fatalf("detached %q", out)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after detach", s.Outstanding())
	}
}

// TestSlabRecyclesChunks pins the arena behaviour: once every view of a
// sealed chunk is released the chunk is carved again, observable as the
// same base pointer coming back.
func TestSlabRecyclesChunks(t *testing.T) {
	s := NewSlab(nil, 64)
	defer s.Close()
	v1 := s.Alloc(64) // fills chunk exactly
	base := &v1[0]
	s.Alloc(64) // seals chunk 1, carves chunk 2
	Release(v1)
	v3 := s.Alloc(64) // chunk 1 should be back on the free list
	if &v3[0] != base {
		t.Error("released chunk was not recycled")
	}
}

func TestSlabCloseAuditsLeaks(t *testing.T) {
	met := &metrics.Set{}
	s := NewSlab(met, 0)
	v := s.Alloc(10)
	_ = s.Alloc(20)
	if leaked := s.Close(); leaked != 2 {
		t.Fatalf("leaked = %d, want 2", leaked)
	}
	if met.SlabLeaked.Value() != 2 {
		t.Fatalf("SlabLeaked = %d, want 2", met.SlabLeaked.Value())
	}
	// Idempotent: a second Close does not double-charge.
	s.Close()
	if met.SlabLeaked.Value() != 2 {
		t.Fatalf("SlabLeaked after re-Close = %d, want 2", met.SlabLeaked.Value())
	}
	// Late release still works on a closed slab.
	if !Release(v) {
		t.Error("late release failed")
	}
}

func TestReleaseAllCounts(t *testing.T) {
	s := NewSlab(nil, 0)
	defer s.Close()
	items := [][]byte{s.Alloc(3), []byte("plain"), s.Alloc(5), nil}
	if n := ReleaseAll(items); n != 2 {
		t.Fatalf("ReleaseAll = %d, want 2", n)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
}

// TestSlabConcurrent hammers Alloc/Retain/Release from many goroutines;
// run under -race this is the data-plane safety check.
func TestSlabConcurrent(t *testing.T) {
	s := NewSlab(nil, 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := s.Alloc(1 + (g+i)%40)
				v[0] = byte(g)
				if i%3 == 0 {
					Retain(v)
					Release(v)
				}
				Release(v)
			}
		}(g)
	}
	wg.Wait()
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
	if leaked := s.Close(); leaked != 0 {
		t.Fatalf("leaked = %d", leaked)
	}
}
