package wire

import "testing"

// FuzzDecode pins the package contract that hostile input is an error,
// never a panic: truncated frames, foreign tags, lying length fields,
// malformed varints and garbage gob streams must all return cleanly.
func FuzzDecode(f *testing.F) {
	seed := [][]byte{
		nil,
		{0},
		{TagBytes, 0, 0, 0, 0},
		{TagBytes, 0, 0, 0, 9, 'x'}, // length past end
		{TagString, 0, 0, 0, 2, 'h', 'i'},
		{TagInt64, 0, 0, 0, 1, 0x04},
		{TagInt64, 0, 0, 0, 0},                  // empty varint
		{TagByteSlices, 0, 0, 0, 1, 0xFF},       // count varint truncated
		{TagRecord, 0, 0, 0, 2, 0xFE, 0x7F},     // unregistered id
		{TagGob, 0, 0, 0, 2, 0xde, 0xad},        // garbage gob
		{0x7F, 0, 0, 0, 0},                      // foreign tag
		{TagBytes, 0xFF, 0xFF, 0xFF, 0xFF, 'x'}, // absurd length
	}
	if enc, err := Append(nil, [][]byte{[]byte("a"), []byte("bb")}); err == nil {
		seed = append(seed, enc)
	}
	if enc, err := Append(nil, int64(-1983)); err == nil {
		seed = append(seed, enc)
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		v, n, err := Decode(b)
		if err != nil {
			return
		}
		if n < HeaderBytes || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if v == nil {
			t.Fatal("nil value with nil error")
		}
	})
}
