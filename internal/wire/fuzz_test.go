package wire

import (
	"testing"

	"asymstream/internal/metrics"
)

// FuzzDecode pins the package contract that hostile input is an error,
// never a panic: truncated frames, foreign tags, lying length fields,
// malformed varints and garbage gob streams must all return cleanly.
func FuzzDecode(f *testing.F) {
	seed := [][]byte{
		nil,
		{0},
		{TagBytes, 0, 0, 0, 0},
		{TagBytes, 0, 0, 0, 9, 'x'}, // length past end
		{TagString, 0, 0, 0, 2, 'h', 'i'},
		{TagInt64, 0, 0, 0, 1, 0x04},
		{TagInt64, 0, 0, 0, 0},                  // empty varint
		{TagByteSlices, 0, 0, 0, 1, 0xFF},       // count varint truncated
		{TagRecord, 0, 0, 0, 2, 0xFE, 0x7F},     // unregistered id
		{TagGob, 0, 0, 0, 2, 0xde, 0xad},        // garbage gob
		{0x7F, 0, 0, 0, 0},                      // foreign tag
		{TagBytes, 0xFF, 0xFF, 0xFF, 0xFF, 'x'}, // absurd length
	}
	if enc, err := Append(nil, [][]byte{[]byte("a"), []byte("bb")}); err == nil {
		seed = append(seed, enc)
	}
	if enc, err := Append(nil, int64(-1983)); err == nil {
		seed = append(seed, enc)
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		v, n, err := Decode(b)
		if err != nil {
			return
		}
		if n < HeaderBytes || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if v == nil {
			t.Fatal("nil value with nil error")
		}
	})
}

// FuzzSlabViews drives the slab refcount machinery with an arbitrary
// op program — alloc, retain, release, detach, integrity sweep — while
// mirroring every reference in a shadow model.  Invariants checked on
// every step and at teardown:
//
//   - Alloc returns a live view of the requested length and writes to
//     one view never bleed into another (capacity-clipped subslices);
//   - Retain/Release on a live view always succeed, and a view dies
//     exactly when its shadow refcount hits zero;
//   - Detach hands back the view's bytes intact;
//   - once the shadow model is drained, Outstanding() == 0, Close()
//     reports zero leaks, and SlabRetained == SlabReleased.
func FuzzSlabViews(f *testing.F) {
	f.Add([]byte{0, 4, 1, 0, 2, 0, 3, 0})
	f.Add([]byte{0, 64, 0, 64, 1, 1, 3, 0, 2, 0, 2, 1, 4, 0})
	f.Add([]byte{0, 1, 1, 0, 1, 0, 2, 0, 2, 0, 2, 0})
	f.Add([]byte{0, 200, 0, 200, 0, 200, 4, 0}) // dedicated oversize chunks
	f.Fuzz(func(t *testing.T, prog []byte) {
		met := &metrics.Set{}
		slab := NewSlab(met, 256)
		type shadow struct {
			view []byte
			refs int
			want byte
		}
		var live []*shadow
		check := func(s *shadow) {
			t.Helper()
			for i, b := range s.view {
				if b != s.want {
					t.Fatalf("view content corrupted at [%d]: got %#x want %#x", i, b, s.want)
				}
			}
		}
		pick := func(arg byte) *shadow {
			if len(live) == 0 {
				return nil
			}
			return live[int(arg)%len(live)]
		}
		drop := func(s *shadow) {
			for i, x := range live {
				if x == s {
					live = append(live[:i], live[i+1:]...)
					return
				}
			}
		}
		seq := byte(0)
		for pc := 0; pc+1 < len(prog); pc += 2 {
			op, arg := prog[pc]%5, prog[pc+1]
			switch op {
			case 0: // alloc
				n := int(arg)%300 + 1 // crosses the 256-byte chunk size
				v := slab.Alloc(n)
				if len(v) != n {
					t.Fatalf("Alloc(%d) returned %d bytes", n, len(v))
				}
				if !IsView(v) {
					t.Fatal("Alloc result is not a live view")
				}
				seq++
				for i := range v {
					v[i] = seq
				}
				live = append(live, &shadow{view: v, refs: 1, want: seq})
			case 1: // retain
				if s := pick(arg); s != nil {
					if !Retain(s.view) {
						t.Fatal("Retain on a live view reported non-view")
					}
					s.refs++
				}
			case 2: // release
				if s := pick(arg); s != nil {
					check(s)
					if !Release(s.view) {
						t.Fatal("Release on a live view reported non-view")
					}
					if s.refs--; s.refs == 0 {
						drop(s)
					}
				}
			case 3: // detach
				if s := pick(arg); s != nil {
					out := Detach(s.view)
					if len(out) != len(s.view) {
						t.Fatalf("Detach returned %d bytes, view had %d", len(out), len(s.view))
					}
					for i, b := range out {
						if b != s.want {
							t.Fatalf("Detach copy corrupted at [%d]: got %#x want %#x", i, b, s.want)
						}
					}
					if s.refs--; s.refs == 0 {
						drop(s)
					}
				}
			case 4: // integrity sweep over everything still live
				for _, s := range live {
					if !IsView(s.view) {
						t.Fatalf("live view (refs=%d) no longer registered", s.refs)
					}
					check(s)
				}
			}
		}
		// Drain the shadow model; the slab must agree it is empty.
		for _, s := range live {
			check(s)
			for i := 0; i < s.refs; i++ {
				if !Release(s.view) {
					t.Fatalf("drain: Release %d/%d reported non-view", i+1, s.refs)
				}
			}
		}
		if n := slab.Outstanding(); n != 0 {
			t.Fatalf("Outstanding() = %d after drain", n)
		}
		if n := slab.Close(); n != 0 {
			t.Fatalf("Close() reports %d leaked views after drain", n)
		}
		if ret, rel := met.SlabRetained.Value(), met.SlabReleased.Value(); ret != rel {
			t.Fatalf("metrics out of balance: retained=%d released=%d", ret, rel)
		}
		if n := met.SlabLeaked.Value(); n != 0 {
			t.Fatalf("SlabLeaked = %d on a drained slab", n)
		}
	})
}
