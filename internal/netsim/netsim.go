// Package netsim simulates the network substrate underneath the Eden
// kernel: several VAX-class "nodes" joined by a 10 Mbit Ethernet in
// the 1983 prototype, here a configurable latency/bandwidth model.
//
// The paper's efficiency argument (§4) rests on invocation being
// location-independent and therefore dearer than a system call; the
// payoff of the read-only discipline is that it halves the number of
// invocations.  This package is what makes that cost real in the
// reproduction: every cross-node hop can be charged a latency, counted
// on a per-link meter, and optionally pushed through gob encoding so
// that payload copying costs appear in wall-clock measurements too.
//
// Failure injection (drops and partitions) exists so the kernel's
// error paths can be tested; the paper's pipelines assume a healthy
// network, and the benchmarks run with failures disabled.
package netsim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"asymstream/internal/metrics"
)

// NodeID names a simulated machine.  Node 0 always exists.
type NodeID int

// Config controls the cost and fault model of a Network.
type Config struct {
	// Nodes is the number of simulated machines (minimum 1).
	Nodes int
	// LocalLatency is charged to an invocation whose source and target
	// Ejects share a node (models the kernel trap + queueing).
	LocalLatency time.Duration
	// CrossLatency is charged when the invocation crosses nodes
	// (models Ethernet + remote kernel).  The paper's premise is
	// CrossLatency >> a system call.
	CrossLatency time.Duration
	// CrossCPU busy-spins for the given duration on each cross-node
	// hop instead of sleeping.  This models the 1983 reality that
	// invocation cost was mostly *protocol processing on the CPUs*
	// (VAXen assembling and parsing Ethernet packets), which — unlike
	// wire latency — cannot be hidden by concurrency.  Halving the
	// number of invocations halves this cost, which is exactly the
	// paper's efficiency claim.
	CrossCPU time.Duration
	// InvocationCPU busy-spins on EVERY hop, local or remote.  The
	// paper's premise is that invocation is costly *because it is
	// location-independent* — a local invocation runs the same
	// machinery as a remote one — so experiments that test the
	// invocation-halving payoff charge this uniformly.
	InvocationCPU time.Duration
	// BytesPerSecond, when non-zero, charges additional latency of
	// size/BytesPerSecond to cross-node messages, modelling link
	// bandwidth (10 Mbit/s ≈ 1.25e6 bytes/s in the prototype).
	BytesPerSecond int64
	// EncodePayloads pushes every cross-node payload through gob and
	// back, so the measurement includes real serialisation work and
	// WireBytes is meaningful.  Payload types must be gob-registered.
	EncodePayloads bool
	// DropRate is the probability in [0,1) that a cross-node message
	// is lost (the send returns ErrDropped).  Tests only.
	DropRate float64
	// Seed seeds the fault-injection RNG; 0 means a fixed default.
	Seed int64
}

// ErrDropped is returned when fault injection discards a message.
var ErrDropped = errors.New("netsim: message dropped")

// ErrPartitioned is returned when the two nodes are partitioned.
var ErrPartitioned = errors.New("netsim: nodes partitioned")

// ErrNoSuchNode is returned for an out-of-range NodeID.
var ErrNoSuchNode = errors.New("netsim: no such node")

// LinkStats carries the per-direction traffic meters for a node pair.
type LinkStats struct {
	Messages int64
	Bytes    int64
}

// Network is a simulated interconnect.  All methods are safe for
// concurrent use.
type Network struct {
	cfg Config
	met *metrics.Set

	mu         sync.Mutex
	rng        *rand.Rand
	links      map[[2]NodeID]*LinkStats
	partitions map[[2]NodeID]bool
}

// New creates a Network.  met may be nil, in which case a private
// metrics set is used.
func New(cfg Config, met *metrics.Set) *Network {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if met == nil {
		met = &metrics.Set{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1983
	}
	return &Network{
		cfg:        cfg,
		met:        met,
		rng:        rand.New(rand.NewSource(seed)),
		links:      make(map[[2]NodeID]*LinkStats),
		partitions: make(map[[2]NodeID]bool),
	}
}

// Nodes returns the number of simulated machines.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

func pair(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Partition severs connectivity between two nodes until Heal is
// called.  Local traffic (a == b) cannot be partitioned.
func (n *Network) Partition(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pair(a, b)] = true
}

// Heal restores connectivity between two nodes.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pair(a, b))
}

// Link returns a copy of the traffic stats for the (unordered) node
// pair.
func (n *Network) Link(a, b NodeID) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.links[pair(a, b)]; ok {
		return *s
	}
	return LinkStats{}
}

// spin burns CPU for roughly d without yielding the processor —
// protocol-processing cost that concurrency cannot hide.
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// Transmit models moving payload from node a to node b.  It returns
// the payload to deliver (a gob round-tripped copy when
// EncodePayloads is set, the original otherwise) and the number of
// wire bytes charged.  Latency is charged by sleeping, so zero-latency
// configurations are free.
func (n *Network) Transmit(a, b NodeID, payload any) (any, int64, error) {
	if int(a) < 0 || int(a) >= n.cfg.Nodes || int(b) < 0 || int(b) >= n.cfg.Nodes {
		return nil, 0, fmt.Errorf("%w: %d->%d (have %d nodes)", ErrNoSuchNode, a, b, n.cfg.Nodes)
	}
	if n.cfg.InvocationCPU > 0 {
		spin(n.cfg.InvocationCPU)
	}
	if a == b {
		if n.cfg.LocalLatency > 0 {
			time.Sleep(n.cfg.LocalLatency)
		}
		return payload, 0, nil
	}

	n.mu.Lock()
	if n.partitions[pair(a, b)] {
		n.mu.Unlock()
		return nil, 0, ErrPartitioned
	}
	dropped := n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate
	n.mu.Unlock()
	if dropped {
		return nil, 0, ErrDropped
	}

	out := payload
	var wire int64
	if n.cfg.EncodePayloads {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&payload); err != nil {
			return nil, 0, fmt.Errorf("netsim: encode: %w", err)
		}
		wire = int64(buf.Len())
		var decoded any
		if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
			return nil, 0, fmt.Errorf("netsim: decode: %w", err)
		}
		out = decoded
		n.met.WireBytes.Add(wire)
	}

	delay := n.cfg.CrossLatency
	if n.cfg.BytesPerSecond > 0 && wire > 0 {
		delay += time.Duration(wire * int64(time.Second) / n.cfg.BytesPerSecond)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if n.cfg.CrossCPU > 0 {
		spin(n.cfg.CrossCPU)
	}

	n.mu.Lock()
	key := pair(a, b)
	s := n.links[key]
	if s == nil {
		s = &LinkStats{}
		n.links[key] = s
	}
	s.Messages++
	s.Bytes += wire
	n.mu.Unlock()
	return out, wire, nil
}
