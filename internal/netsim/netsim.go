// Package netsim simulates the network substrate underneath the Eden
// kernel: several VAX-class "nodes" joined by a 10 Mbit Ethernet in
// the 1983 prototype, here a configurable latency/bandwidth model.
//
// The paper's efficiency argument (§4) rests on invocation being
// location-independent and therefore dearer than a system call; the
// payoff of the read-only discipline is that it halves the number of
// invocations.  This package is what makes that cost real in the
// reproduction: every cross-node hop can be charged a latency, counted
// on a per-link meter, and optionally pushed through gob encoding so
// that payload copying costs appear in wall-clock measurements too.
//
// Failure injection (drops and partitions) exists so the kernel's
// error paths can be tested; the paper's pipelines assume a healthy
// network, and the benchmarks run with failures disabled.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"asymstream/internal/metrics"
	"asymstream/internal/wire"
)

// NodeID names a simulated machine.  Node 0 always exists.
type NodeID int

// Config controls the cost and fault model of a Network.
type Config struct {
	// Nodes is the number of simulated machines (minimum 1).
	Nodes int
	// LocalLatency is charged to an invocation whose source and target
	// Ejects share a node (models the kernel trap + queueing).
	LocalLatency time.Duration
	// CrossLatency is charged when the invocation crosses nodes
	// (models Ethernet + remote kernel).  The paper's premise is
	// CrossLatency >> a system call.
	CrossLatency time.Duration
	// CrossCPU busy-spins for the given duration on each cross-node
	// hop instead of sleeping.  This models the 1983 reality that
	// invocation cost was mostly *protocol processing on the CPUs*
	// (VAXen assembling and parsing Ethernet packets), which — unlike
	// wire latency — cannot be hidden by concurrency.  Halving the
	// number of invocations halves this cost, which is exactly the
	// paper's efficiency claim.
	CrossCPU time.Duration
	// InvocationCPU busy-spins on EVERY hop, local or remote.  The
	// paper's premise is that invocation is costly *because it is
	// location-independent* — a local invocation runs the same
	// machinery as a remote one — so experiments that test the
	// invocation-halving payoff charge this uniformly.
	InvocationCPU time.Duration
	// BytesPerSecond, when non-zero, charges additional latency of
	// size/BytesPerSecond to cross-node messages, modelling link
	// bandwidth (10 Mbit/s ≈ 1.25e6 bytes/s in the prototype).
	BytesPerSecond int64
	// EncodePayloads pushes every cross-node payload through the
	// compact wire codec (gob for unregistered types) and back, so the
	// measurement includes real serialisation work and WireBytes is
	// honest: the exact frame size — header plus payload — that would
	// cross the Ethernet.
	EncodePayloads bool
	// DropRate is the probability in [0,1) that a cross-node message
	// is lost (the send returns ErrDropped).  Tests only.
	DropRate float64
	// Seed seeds the fault-injection RNG; 0 means a fixed default.
	Seed int64
}

// ErrDropped is returned when fault injection discards a message.
var ErrDropped = errors.New("netsim: message dropped")

// ErrPartitioned is returned when the two nodes are partitioned.
var ErrPartitioned = errors.New("netsim: nodes partitioned")

// ErrNoSuchNode is returned for an out-of-range NodeID.
var ErrNoSuchNode = errors.New("netsim: no such node")

// LinkStats carries the per-direction traffic meters for a node pair.
type LinkStats struct {
	Messages int64
	Bytes    int64
}

// linkMeter is the internal, shard-per-pair form of LinkStats: plain
// atomics, so concurrent Transmits on different links (and even on the
// same link) never serialise on a network-wide mutex.
type linkMeter struct {
	messages atomic.Int64
	bytes    atomic.Int64
}

// Network is a simulated interconnect.  All methods are safe for
// concurrent use.
type Network struct {
	cfg Config
	met *metrics.Set

	// meters holds one pre-allocated meter per unordered node pair,
	// indexed by pairIndex.  Lock-free on the Transmit path.
	meters []linkMeter

	// faulty is true while any partition exists or DropRate > 0; the
	// Transmit fast path checks it once and skips the fault mutex
	// entirely when the network is healthy (the benchmark and paper
	// pipeline configurations).
	faulty atomic.Bool

	mu         sync.Mutex // guards rng and partitions only
	rng        *rand.Rand
	partitions map[[2]NodeID]bool
}

// New creates a Network.  met may be nil, in which case a private
// metrics set is used.
func New(cfg Config, met *metrics.Set) *Network {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if met == nil {
		met = &metrics.Set{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1983
	}
	n := &Network{
		cfg:        cfg,
		met:        met,
		meters:     make([]linkMeter, cfg.Nodes*cfg.Nodes),
		rng:        rand.New(rand.NewSource(seed)),
		partitions: make(map[[2]NodeID]bool),
	}
	if cfg.DropRate > 0 {
		n.faulty.Store(true)
	}
	return n
}

// pairIndex maps an unordered node pair to its meter slot.
func (n *Network) pairIndex(a, b NodeID) int {
	if a > b {
		a, b = b, a
	}
	return int(a)*n.cfg.Nodes + int(b)
}

// Nodes returns the number of simulated machines.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

func pair(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Partition severs connectivity between two nodes until Heal is
// called.  Local traffic (a == b) cannot be partitioned.
func (n *Network) Partition(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pair(a, b)] = true
	n.faulty.Store(true)
}

// Heal restores connectivity between two nodes.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pair(a, b))
	if len(n.partitions) == 0 && n.cfg.DropRate <= 0 {
		n.faulty.Store(false)
	}
}

// Link returns a copy of the traffic stats for the (unordered) node
// pair.
func (n *Network) Link(a, b NodeID) LinkStats {
	if int(a) < 0 || int(a) >= n.cfg.Nodes || int(b) < 0 || int(b) >= n.cfg.Nodes {
		return LinkStats{}
	}
	m := &n.meters[n.pairIndex(a, b)]
	return LinkStats{Messages: m.messages.Load(), Bytes: m.bytes.Load()}
}

// spin burns CPU for roughly d without yielding the processor —
// protocol-processing cost that concurrency cannot hide.
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// Transmit models moving payload from node a to node b.  It returns
// the payload to deliver (a gob round-tripped copy when
// EncodePayloads is set, the original otherwise) and the number of
// wire bytes charged.  Latency is charged by sleeping, so zero-latency
// configurations are free.
func (n *Network) Transmit(a, b NodeID, payload any) (any, int64, error) {
	if int(a) < 0 || int(a) >= n.cfg.Nodes || int(b) < 0 || int(b) >= n.cfg.Nodes {
		return nil, 0, fmt.Errorf("%w: %d->%d (have %d nodes)", ErrNoSuchNode, a, b, n.cfg.Nodes)
	}
	if n.cfg.InvocationCPU > 0 {
		spin(n.cfg.InvocationCPU)
	}
	if a == b {
		if n.cfg.LocalLatency > 0 {
			time.Sleep(n.cfg.LocalLatency)
		}
		return payload, 0, nil
	}

	// Fault injection is off in every benchmark and paper-pipeline
	// configuration; one atomic load keeps the healthy path off the
	// fault mutex.
	if n.faulty.Load() {
		n.mu.Lock()
		if n.partitions[pair(a, b)] {
			n.mu.Unlock()
			return nil, 0, ErrPartitioned
		}
		dropped := n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate
		n.mu.Unlock()
		if dropped {
			return nil, 0, ErrDropped
		}
	}

	out := payload
	var wireBytes int64
	if n.cfg.EncodePayloads {
		// The codec round trip lives in its own function: the gob
		// fallback takes the payload's address, and doing that here
		// would move the parameter to the heap on every call — one
		// hidden allocation per hop even with encoding off.
		var err error
		out, wireBytes, err = n.encodeRoundTrip(payload)
		if err != nil {
			return nil, 0, err
		}
		n.met.WireBytes.Add(wireBytes)
		n.met.WireFramesEncoded.Inc()
	}

	delay := n.cfg.CrossLatency
	if n.cfg.BytesPerSecond > 0 && wireBytes > 0 {
		delay += time.Duration(wireBytes * int64(time.Second) / n.cfg.BytesPerSecond)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if n.cfg.CrossCPU > 0 {
		spin(n.cfg.CrossCPU)
	}

	m := &n.meters[n.pairIndex(a, b)]
	m.messages.Add(1)
	m.bytes.Add(wireBytes)
	return out, wireBytes, nil
}

// wireReleaser is implemented by records whose payload items are
// refcounted slab views: once the encoded copy is on the wire the
// sender-side views are dead weight and can go back to their slab.
type wireReleaser interface{ ReleaseWirePayload() }

// encodeRoundTrip pushes payload through the wire codec and back,
// charging the encoded frame size — header plus payload, the bytes
// that would actually cross the Ethernet — as wire bytes.
func (n *Network) encodeRoundTrip(payload any) (any, int64, error) {
	buf := wire.GetBuf()
	enc, err := wire.Append((*buf)[:0], payload)
	if err != nil {
		wire.PutBuf(buf)
		return nil, 0, fmt.Errorf("netsim: encode: %w", err)
	}
	nb := int64(len(enc))
	decoded, _, err := wire.Decode(enc)
	*buf = enc
	wire.PutBuf(buf)
	if err != nil {
		return nil, 0, fmt.Errorf("netsim: decode: %w", err)
	}
	if r, ok := payload.(wireReleaser); ok {
		r.ReleaseWirePayload()
	}
	return decoded, nb, nil
}
