package netsim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
	"time"

	"asymstream/internal/metrics"
	"asymstream/internal/wire"
)

type testPayload struct {
	N    int
	Data []byte
}

func init() {
	gob.Register(&testPayload{})
}

func TestLocalTransmitPassthrough(t *testing.T) {
	n := New(Config{Nodes: 2}, nil)
	p := &testPayload{N: 1, Data: []byte("x")}
	out, wire, err := n.Transmit(0, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if wire != 0 {
		t.Errorf("local wire bytes = %d, want 0", wire)
	}
	if out != any(p) {
		t.Error("local transmit should pass the same pointer")
	}
}

func TestCrossTransmitWithoutEncoding(t *testing.T) {
	n := New(Config{Nodes: 2}, nil)
	p := &testPayload{N: 2}
	out, wire, err := n.Transmit(0, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if wire != 0 {
		t.Errorf("unencoded wire bytes = %d, want 0", wire)
	}
	if out != any(p) {
		t.Error("unencoded transmit should pass the same pointer")
	}
	stats := n.Link(0, 1)
	if stats.Messages != 1 {
		t.Errorf("link messages = %d, want 1", stats.Messages)
	}
}

func TestCrossTransmitGobRoundTrip(t *testing.T) {
	met := &metrics.Set{}
	n := New(Config{Nodes: 2, EncodePayloads: true}, met)
	p := &testPayload{N: 42, Data: []byte("hello")}
	out, wire, err := n.Transmit(0, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if wire <= 0 {
		t.Error("encoded transmit must report wire bytes")
	}
	got, ok := out.(*testPayload)
	if !ok {
		t.Fatalf("decoded type %T", out)
	}
	if got == p {
		t.Error("encoded transmit must deliver a copy")
	}
	if got.N != 42 || string(got.Data) != "hello" {
		t.Errorf("decoded %+v", got)
	}
	if met.WireBytes.Value() != wire {
		t.Errorf("WireBytes = %d, want %d", met.WireBytes.Value(), wire)
	}
	if s := n.Link(0, 1); s.Bytes != wire {
		t.Errorf("link bytes = %d, want %d", s.Bytes, wire)
	}
}

func TestTransmitBadNode(t *testing.T) {
	n := New(Config{Nodes: 2}, nil)
	if _, _, err := n.Transmit(0, 5, nil); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("want ErrNoSuchNode, got %v", err)
	}
	if _, _, err := n.Transmit(-1, 0, nil); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("want ErrNoSuchNode, got %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Config{Nodes: 3}, nil)
	n.Partition(0, 1)
	if _, _, err := n.Transmit(0, 1, nil); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	// Partition is symmetric.
	if _, _, err := n.Transmit(1, 0, nil); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse direction: want ErrPartitioned, got %v", err)
	}
	// Unrelated pair unaffected.
	if _, _, err := n.Transmit(0, 2, nil); err != nil {
		t.Fatalf("unrelated pair: %v", err)
	}
	// Local traffic cannot be partitioned.
	if _, _, err := n.Transmit(0, 0, nil); err != nil {
		t.Fatalf("local traffic: %v", err)
	}
	n.Heal(1, 0)
	if _, _, err := n.Transmit(0, 1, nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestDropRate(t *testing.T) {
	n := New(Config{Nodes: 2, DropRate: 1.0}, nil)
	if _, _, err := n.Transmit(0, 1, nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("DropRate=1: want ErrDropped, got %v", err)
	}
	// Local traffic never drops.
	if _, _, err := n.Transmit(1, 1, nil); err != nil {
		t.Fatalf("local with DropRate=1: %v", err)
	}
	// DropRate ~0.5 should drop some and pass some (seeded, stable).
	n2 := New(Config{Nodes: 2, DropRate: 0.5, Seed: 7}, nil)
	drops, passes := 0, 0
	for i := 0; i < 200; i++ {
		if _, _, err := n2.Transmit(0, 1, nil); err != nil {
			drops++
		} else {
			passes++
		}
	}
	if drops == 0 || passes == 0 {
		t.Errorf("DropRate=0.5: drops=%d passes=%d", drops, passes)
	}
}

func TestNodesMinimumOne(t *testing.T) {
	n := New(Config{}, nil)
	if n.Nodes() != 1 {
		t.Fatalf("Nodes() = %d, want 1", n.Nodes())
	}
}

func TestCrossLatencySleeps(t *testing.T) {
	n := New(Config{Nodes: 2, CrossLatency: 20 * time.Millisecond}, nil)
	start := time.Now()
	if _, _, err := n.Transmit(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("cross transmit took %v, want >= ~20ms", elapsed)
	}
	// Local hop is not charged cross latency.
	start = time.Now()
	if _, _, err := n.Transmit(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("local transmit took %v, want ~0", elapsed)
	}
}

func TestInvocationCPUCharged(t *testing.T) {
	n := New(Config{Nodes: 1, InvocationCPU: 5 * time.Millisecond}, nil)
	start := time.Now()
	if _, _, err := n.Transmit(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("InvocationCPU hop took %v, want >= ~5ms", elapsed)
	}
}

func TestBandwidthCharging(t *testing.T) {
	// 1 KiB at 10 KiB/s should take ~100ms.
	n := New(Config{Nodes: 2, EncodePayloads: true, BytesPerSecond: 10 * 1024}, nil)
	p := &testPayload{Data: make([]byte, 1024)}
	start := time.Now()
	_, wire, err := n.Transmit(0, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(wire) * time.Second / (10 * 1024)
	if elapsed := time.Since(start); elapsed < want/2 {
		t.Errorf("bandwidth-limited transmit took %v, want >= ~%v", elapsed, want)
	}
}

// TestWireBytesPinned pins the honest per-frame accounting: a []byte
// payload costs exactly the codec header plus its length, a typed
// record costs exactly its compact frame — and both are charged
// identically to WireBytes, the per-link meter, and the return value.
func TestWireBytesPinned(t *testing.T) {
	met := &metrics.Set{}
	n := New(Config{Nodes: 2, EncodePayloads: true}, met)

	payload := []byte("0123456789")
	out, wb, err := n.Transmit(0, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(wire.HeaderBytes + len(payload))
	if wb != want {
		t.Errorf("wire bytes = %d, want %d (header %d + payload %d)",
			wb, want, wire.HeaderBytes, len(payload))
	}
	if met.WireBytes.Value() != want {
		t.Errorf("WireBytes = %d, want %d", met.WireBytes.Value(), want)
	}
	if met.WireFramesEncoded.Value() != 1 {
		t.Errorf("WireFramesEncoded = %d, want 1", met.WireFramesEncoded.Value())
	}
	got, ok := out.([]byte)
	if !ok {
		t.Fatalf("decoded type %T", out)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("decoded %q", got)
	}
	if &got[0] == &payload[0] {
		t.Error("encoded transmit must deliver a copy")
	}
	if s := n.Link(0, 1); s.Bytes != want {
		t.Errorf("link bytes = %d, want %d", s.Bytes, want)
	}
}
