// Link extraction: the kernel routes every cross-node hop through this
// interface instead of calling the simulator directly, so the same
// invocation machinery can run over the in-process latency model
// (Network), a Unix domain socket, or TCP loopback — the transports
// internal/transport provides.  The simulator remains the default and
// the reference semantics: Transmit moves one payload from node a to
// node b and returns the payload as it exists on b (a codec round trip
// when the link serialises), plus the number of wire bytes charged.
package netsim

import "asymstream/internal/metrics"

// Link carries payloads between simulated nodes.  Implementations must
// be safe for concurrent Transmits; a == b is the local fast path and
// must not touch the wire.  Frames sent on one (a, b) direction are
// delivered in Transmit order — the stream protocol's windowed credit
// machinery (TransferReply.Base, DeliverReply.Credits) assumes nothing
// stronger.
type Link interface {
	// Transmit moves payload from node a to node b, returning the
	// payload to deliver on b and the wire bytes charged.
	Transmit(a, b NodeID, payload any) (any, int64, error)
	// Nodes returns the number of nodes the link joins.
	Nodes() int
	// Kind names the transport ("netsim", "unix", "tcp") for
	// diagnostics and Options.Transport validation.
	Kind() string
	// Close releases sockets, goroutines and read slabs.  Pending
	// Transmits fail; Close is idempotent.
	Close() error
}

// MetricsBinder is implemented by Links that meter WireBytes /
// WireFramesEncoded / SlabLeaked into a kernel's metrics set.  The
// kernel binds its set at construction, before any traffic flows.
type MetricsBinder interface {
	BindMetrics(*metrics.Set)
}

// Kind implements Link.
func (n *Network) Kind() string { return "netsim" }

// Close implements Link.  The simulator holds no external resources.
func (n *Network) Close() error { return nil }
