// Package device implements the peripheral Ejects of §4: terminals,
// printers, the null sink, the date/time source, static data sources,
// and the report window of Figures 3 and 4.
//
// "Output devices such as terminals and printers would provide a
// potentially infinite supply of Read invocations.  Connecting a
// terminal to a filter Eject would be rather like starting a pump; it
// would suck data through the filter and generate a partial vacuum (in
// the form of outstanding read invocations) on the far side."
//
// Devices are commanded by invocation, like everything in Eden: a
// terminal is asked (via Device.ReadFrom) to start pulling from a
// source, a printer is asked (via Printer.Print) to print a stream —
// "A file could be printed simply by requesting the printer server to
// read from the file" (§4).
package device

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// Operation names served by devices.
const (
	// OpReadFrom commands a sink device to pull a stream to
	// completion.  The invocation's reply is withheld until the stream
	// ends, so the invoker learns the outcome — this is how "printing
	// a file" completes.
	OpReadFrom = "Device.ReadFrom"
	// OpPrint is OpReadFrom with printer job semantics (banner, page
	// accounting, serialised jobs).
	OpPrint = "Printer.Print"
	// OpWatch commands a report window to start following a report
	// stream; the reply is immediate and the watch runs until the
	// stream ends.
	OpWatch = "Window.Watch"
)

// ReadFromRequest names the stream a sink device should consume: the
// source Eject's UID plus the channel identifier — all that is ever
// needed to redirect transput in Eden (§8: "Special file or stream
// descriptors are not needed").
type ReadFromRequest struct {
	Source  uid.UID
	Channel transput.ChannelID
	// Batch/Prefetch tune the device's InPort (0 = defaults).
	Batch    int
	Prefetch int
	// Label tags the stream in multi-stream devices (window prefix,
	// printer banner).
	Label string
}

// ReadFromReply reports a completed pull.
type ReadFromReply struct {
	Items int64
	Bytes int64
}

// WatchReply acknowledges a Watch command.
type WatchReply struct{}

func init() {
	gob.Register(&ReadFromRequest{})
	gob.Register(&ReadFromReply{})
	gob.Register(&WatchReply{})
}

// pump pulls a stream to completion, handing each item to emit.
func pump(k *kernel.Kernel, self uid.UID, req *ReadFromRequest, emit func([]byte) error) (items, bytes int64, err error) {
	in := transput.NewInPort(k, self, req.Source, req.Channel, transput.InPortConfig{
		Batch:    req.Batch,
		Prefetch: req.Prefetch,
	})
	for {
		item, err := in.Next()
		if err == io.EOF {
			return items, bytes, nil
		}
		if err != nil {
			return items, bytes, err
		}
		items++
		bytes += int64(len(item))
		if err := emit(item); err != nil {
			in.Cancel(err.Error())
			return items, bytes, err
		}
	}
}

// Terminal is a sink device that renders pulled items to an io.Writer
// (its "screen").  Multiple concurrent ReadFrom jobs are permitted;
// their output interleaves at item granularity, like windows on a
// real terminal.
type Terminal struct {
	k    *kernel.Kernel
	self uid.UID
	mu   sync.Mutex
	w    io.Writer
}

// NewTerminal creates and registers a terminal on the given node.
func NewTerminal(k *kernel.Kernel, node netsim.NodeID, w io.Writer) (*Terminal, uid.UID, error) {
	t := &Terminal{k: k, w: w}
	id := k.NewUID()
	t.self = id
	if err := k.CreateWithUID(id, t, node); err != nil {
		return nil, uid.Nil, err
	}
	return t, id, nil
}

// EdenType implements kernel.Eject.
func (t *Terminal) EdenType() string { return "device.Terminal" }

// Serve implements kernel.Eject.
func (t *Terminal) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpReadFrom:
		req, ok := inv.Payload.(*ReadFromRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		items, bytes, err := pump(t.k, t.self, req, func(item []byte) error {
			t.mu.Lock()
			defer t.mu.Unlock()
			_, werr := t.w.Write(item)
			return werr
		})
		if err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply(&ReadFromReply{Items: items, Bytes: bytes})
	case transput.OpChannels:
		inv.Reply(&transput.ChannelsReply{})
	default:
		inv.Fail(fmt.Errorf("%w: %q on Terminal", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// NullSink "is an Eject which reads indiscriminately and ignores the
// data it is given" (§4).
type NullSink struct {
	k    *kernel.Kernel
	self uid.UID
}

// NewNullSink creates and registers a null sink on the given node.
func NewNullSink(k *kernel.Kernel, node netsim.NodeID) (*NullSink, uid.UID, error) {
	s := &NullSink{k: k}
	id := k.NewUID()
	s.self = id
	if err := k.CreateWithUID(id, s, node); err != nil {
		return nil, uid.Nil, err
	}
	return s, id, nil
}

// EdenType implements kernel.Eject.
func (s *NullSink) EdenType() string { return "device.NullSink" }

// Serve implements kernel.Eject.
func (s *NullSink) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpReadFrom:
		req, ok := inv.Payload.(*ReadFromRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		items, bytes, err := pump(s.k, s.self, req, func([]byte) error { return nil })
		if err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply(&ReadFromReply{Items: items, Bytes: bytes})
	case transput.OpChannels:
		inv.Reply(&transput.ChannelsReply{})
	default:
		inv.Fail(fmt.Errorf("%w: %q on NullSink", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// Printer is a print server: jobs are serialised, each rendered with a
// banner and trailing form feed.
type Printer struct {
	k    *kernel.Kernel
	self uid.UID
	mu   sync.Mutex // serialises jobs
	w    io.Writer
	jobs int
}

// NewPrinter creates and registers a printer on the given node.
func NewPrinter(k *kernel.Kernel, node netsim.NodeID, w io.Writer) (*Printer, uid.UID, error) {
	p := &Printer{k: k, w: w}
	id := k.NewUID()
	p.self = id
	if err := k.CreateWithUID(id, p, node); err != nil {
		return nil, uid.Nil, err
	}
	return p, id, nil
}

// EdenType implements kernel.Eject.
func (p *Printer) EdenType() string { return "device.Printer" }

// Serve implements kernel.Eject.
func (p *Printer) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpPrint, OpReadFrom:
		req, ok := inv.Payload.(*ReadFromRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		p.jobs++
		banner := req.Label
		if banner == "" {
			banner = fmt.Sprintf("job %d", p.jobs)
		}
		if _, err := fmt.Fprintf(p.w, "=== %s ===\n", banner); err != nil {
			inv.Fail(err)
			return
		}
		items, bytes, err := pump(p.k, p.self, req, func(item []byte) error {
			_, werr := p.w.Write(item)
			return werr
		})
		if err != nil {
			inv.Fail(err)
			return
		}
		if _, err := io.WriteString(p.w, "\f"); err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply(&ReadFromReply{Items: items, Bytes: bytes})
	case transput.OpChannels:
		inv.Reply(&transput.ChannelsReply{})
	default:
		inv.Fail(fmt.Errorf("%w: %q on Printer", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// Jobs reports how many print jobs have been accepted.
func (p *Printer) Jobs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jobs
}
