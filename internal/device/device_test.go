package device

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

func newDevKernel(t testing.TB) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{})
	t.Cleanup(k.Shutdown)
	return k
}

// syncBuffer is a goroutine-safe bytes.Buffer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func staticSrc(t *testing.T, k *kernel.Kernel, text string) *ReadFromRequest {
	t.Helper()
	id, ch, err := StaticSource(k, 0, transput.SplitLines([]byte(text)), transput.ROStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return &ReadFromRequest{Source: id, Channel: ch}
}

func TestTerminalPullsToScreen(t *testing.T) {
	k := newDevKernel(t)
	var screen syncBuffer
	_, termUID, err := NewTerminal(k, 0, &screen)
	if err != nil {
		t.Fatal(err)
	}
	req := staticSrc(t, k, "hello\nterminal\n")
	raw, err := k.Invoke(uid.Nil, termUID, OpReadFrom, req)
	if err != nil {
		t.Fatal(err)
	}
	rep := raw.(*ReadFromReply)
	if rep.Items != 2 || rep.Bytes != 15 {
		t.Fatalf("reply = %+v", rep)
	}
	if screen.String() != "hello\nterminal\n" {
		t.Fatalf("screen = %q", screen.String())
	}
}

func TestNullSinkCountsAndDiscards(t *testing.T) {
	k := newDevKernel(t)
	_, nullUID, err := NewNullSink(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := staticSrc(t, k, "a\nb\nc\n")
	raw, err := k.Invoke(uid.Nil, nullUID, OpReadFrom, req)
	if err != nil {
		t.Fatal(err)
	}
	if rep := raw.(*ReadFromReply); rep.Items != 3 {
		t.Fatalf("null sink read %d items", rep.Items)
	}
}

func TestPrinterBannerAndJobs(t *testing.T) {
	k := newDevKernel(t)
	var paper syncBuffer
	p, prUID, err := NewPrinter(k, 0, &paper)
	if err != nil {
		t.Fatal(err)
	}
	req1 := staticSrc(t, k, "page one\n")
	req1.Label = "report.txt"
	if _, err := k.Invoke(uid.Nil, prUID, OpPrint, req1); err != nil {
		t.Fatal(err)
	}
	req2 := staticSrc(t, k, "second job\n")
	if _, err := k.Invoke(uid.Nil, prUID, OpPrint, req2); err != nil {
		t.Fatal(err)
	}
	out := paper.String()
	if !strings.Contains(out, "=== report.txt ===") {
		t.Errorf("missing labelled banner: %q", out)
	}
	if !strings.Contains(out, "=== job 2 ===") {
		t.Errorf("missing default banner: %q", out)
	}
	if strings.Count(out, "\f") != 2 {
		t.Errorf("form feeds: %q", out)
	}
	if p.Jobs() != 2 {
		t.Errorf("jobs = %d", p.Jobs())
	}
}

func TestClockSourceServesOnDemand(t *testing.T) {
	k := newDevKernel(t)
	fake := time.Date(1983, 10, 10, 12, 0, 0, 0, time.UTC)
	calls := 0
	_, clkUID, err := NewClockSource(k, 0, func() time.Time {
		calls++
		return fake.Add(time.Duration(calls) * time.Second)
	}, time.RFC3339)
	if err != nil {
		t.Fatal(err)
	}
	in := transput.NewInPort(k, uid.Nil, clkUID, transput.Chan(0), transput.InPortConfig{})
	first, err := in.Next()
	if err != nil {
		t.Fatal(err)
	}
	second, err := in.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) == string(second) {
		t.Fatalf("clock repeated itself: %q", first)
	}
	if !strings.HasPrefix(string(first), "1983-10-10T") {
		t.Fatalf("timestamp = %q", first)
	}
	// The clock never generates unless asked (pure passive output).
	if calls != 2 {
		t.Fatalf("clock generated %d stamps for 2 reads", calls)
	}
}

func TestCounterSource(t *testing.T) {
	k := newDevKernel(t)
	id, ch, err := CounterSource(k, 0, 5, transput.ROStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	in := transput.NewInPort(k, uid.Nil, id, ch, transput.InPortConfig{Batch: 2})
	n := 0
	for {
		item, err := in.Next()
		if err != nil {
			break
		}
		if !strings.HasPrefix(string(item), "line ") {
			t.Fatalf("item %q", item)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("counter emitted %d", n)
	}
}

func TestWindowPullMode(t *testing.T) {
	// Figure 4: the window pulls multiple report channels and labels
	// them.
	k := newDevKernel(t)
	w, wUID, err := NewReportWindow(k, 0, nil, ReportWindowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aID, aCh, err := StaticSource(k, 0, transput.SplitLines([]byte("r1\nr2\n")), transput.ROStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bID, bCh, err := StaticSource(k, 0, transput.SplitLines([]byte("s1\n")), transput.ROStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Watch(k, wUID, aID, aCh, "A"); err != nil {
		t.Fatal(err)
	}
	if err := Watch(k, wUID, bID, bCh, "B"); err != nil {
		t.Fatal(err)
	}
	w.WaitQuiescent()
	lines := w.Lines()
	if len(lines) != 3 {
		t.Fatalf("window lines = %d", len(lines))
	}
	var got []string
	for _, l := range lines {
		got = append(got, string(l))
	}
	sort.Strings(got)
	want := []string{"[A] r1\n", "[A] r2\n", "[B] s1\n"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v", got)
		}
	}
}

func TestWindowPushMode(t *testing.T) {
	// Figure 3: anonymous pushed reports from two writers.
	k := newDevKernel(t)
	w, wUID, err := NewReportWindow(k, 0, nil, ReportWindowConfig{Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := transput.NewPusher(k, uid.Nil, wUID, w.PushChannel(), transput.PusherConfig{})
			_ = p.Put([]byte("report\n"))
			_ = p.Close()
		}(i)
	}
	wg.Wait()
	w.WaitQuiescent()
	if n := len(w.Lines()); n != 2 {
		t.Fatalf("pushed lines = %d", n)
	}
}

func TestDeviceUnknownOp(t *testing.T) {
	k := newDevKernel(t)
	_, termUID, err := NewTerminal(k, 0, &syncBuffer{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Invoke(uid.Nil, termUID, "Device.Bogus", &ReadFromRequest{}); !errors.Is(err, kernel.ErrNoSuchOperation) {
		t.Fatalf("want ErrNoSuchOperation, got %v", err)
	}
}

func TestReadFromBadSourceFails(t *testing.T) {
	k := newDevKernel(t)
	_, termUID, err := NewTerminal(k, 0, &syncBuffer{})
	if err != nil {
		t.Fatal(err)
	}
	req := &ReadFromRequest{Source: uid.New(), Channel: transput.Chan(0)}
	if _, err := k.Invoke(uid.Nil, termUID, OpReadFrom, req); err == nil {
		t.Fatal("ReadFrom nonexistent source succeeded")
	}
}
