package device

import (
	"fmt"
	"io"
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// ReportWindow is the shared destination for monitoring streams in
// Figures 3 and 4: "The reports from source and F1 are directed to a
// common destination, perhaps a window on a display."
//
// It supports both disciplines, because the two figures differ exactly
// in how reports reach it:
//
//   - Figure 4 (read-only): "It is assumed that the Report Window is
//     designed to read from multiple sources."  OpWatch gives the
//     window a (source UID, channel id) pair and it pulls that report
//     stream with its own InPort — arbitrary fan-in, each stream
//     individually known and labelled.
//
//   - Figure 3 (write-only): report producers push Deliver invocations
//     at the window's "Report" input channel.  The window cannot tell
//     the writers apart — deliveries merge — which is precisely the
//     fan-in anonymity of the push discipline.
type ReportWindow struct {
	k    *kernel.Kernel
	self uid.UID

	in       *transput.WOInPort
	reader   *transput.ChannelReader
	consumer sync.Once

	mu      sync.Mutex
	w       io.Writer
	lines   [][]byte
	watches sync.WaitGroup
}

// ReportWindowConfig parameterises a window.
type ReportWindowConfig struct {
	// Writers is the push-mode fan-in degree: the number of End marks
	// that complete the pushed report stream (minimum 1).
	Writers int
	// Capacity bounds the push-mode input buffer.
	Capacity int
	// CapabilityMode mints a UID for the push-mode channel.
	CapabilityMode bool
}

// NewReportWindow creates and registers a window on the given node.
// w receives every report line (nil to only record in memory).
func NewReportWindow(k *kernel.Kernel, node netsim.NodeID, w io.Writer, cfg ReportWindowConfig) (*ReportWindow, uid.UID, error) {
	rw := &ReportWindow{k: k, w: w}
	rw.in = transput.NewWOInPort(k, transput.WOInPortConfig{
		Capacity:       cfg.Capacity,
		CapabilityMode: cfg.CapabilityMode,
	})
	rw.reader = rw.in.Declare("Report", transput.ChannelReport, cfg.Capacity, cfg.Writers)
	id := k.NewUID()
	rw.self = id
	if err := k.CreateWithUID(id, rw, node); err != nil {
		return nil, uid.Nil, err
	}
	return rw, id, nil
}

// EdenType implements kernel.Eject.
func (rw *ReportWindow) EdenType() string { return "device.ReportWindow" }

// PushChannel returns the identifier producers use to Deliver reports
// (capability-mode aware).
func (rw *ReportWindow) PushChannel() transput.ChannelID { return rw.reader.ID() }

// emit appends one labelled line to the display.
func (rw *ReportWindow) emit(label string, item []byte) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	line := item
	if label != "" {
		line = append([]byte("["+label+"] "), item...)
	}
	rw.lines = append(rw.lines, append([]byte(nil), line...))
	if rw.w != nil {
		_, _ = rw.w.Write(line)
	}
}

// Lines returns a copy of everything displayed so far.
func (rw *ReportWindow) Lines() [][]byte {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	out := make([][]byte, len(rw.lines))
	for i, l := range rw.lines {
		out[i] = append([]byte(nil), l...)
	}
	return out
}

// startConsumer drains the push-mode channel onto the display (armed
// on first use so pull-only windows never consume it).
func (rw *ReportWindow) startConsumer() {
	rw.consumer.Do(func() {
		rw.watches.Add(1)
		go func() {
			defer rw.watches.Done()
			for {
				item, err := rw.reader.Next()
				if err != nil {
					return
				}
				rw.emit("", item)
			}
		}()
	})
}

// Serve implements kernel.Eject.
func (rw *ReportWindow) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case transput.OpDeliver:
		rw.startConsumer()
		rw.in.ServeDeliver(inv)
	case transput.OpChannels:
		inv.Reply(&transput.ChannelsReply{Channels: rw.in.Adverts()})
	case transput.OpAbort:
		rw.in.ServeAbort(inv)
	case OpWatch:
		req, ok := inv.Payload.(*ReadFromRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		label := req.Label
		rw.watches.Add(1)
		go func() {
			defer rw.watches.Done()
			_, _, _ = pump(rw.k, rw.self, req, func(item []byte) error {
				rw.emit(label, item)
				return nil
			})
		}()
		inv.Reply(&WatchReply{})
	default:
		inv.Fail(fmt.Errorf("%w: %q on ReportWindow", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// WaitQuiescent blocks until all watch pumps and the push consumer
// have finished (their streams ended).  Tests use it to assert on the
// final display.
func (rw *ReportWindow) WaitQuiescent() { rw.watches.Wait() }

// OnDeactivate stops the push consumer.
func (rw *ReportWindow) OnDeactivate() {
	rw.reader.Cancel("window deactivated")
}

// Watch is a convenience wrapper issuing OpWatch from outside the
// Eden system.
func Watch(k *kernel.Kernel, window, source uid.UID, channel transput.ChannelID, label string) error {
	_, err := k.Invoke(uid.Nil, window, OpWatch, &ReadFromRequest{
		Source:  source,
		Channel: channel,
		Label:   label,
	})
	return err
}
