package device

import (
	"fmt"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// ClockSource is the paper's example of a degenerate source: "An Eject
// which responds to a read invocation by returning the current date
// and time is a source" (§4).  It is the purest passive output: each
// Transfer is answered with a freshly generated item, on demand, and
// the stream never ends.
type ClockSource struct {
	now    func() time.Time
	format string
}

// NewClockSource creates and registers a clock on the given node.
// now may be nil (wall clock); format may be empty (RFC 3339).
func NewClockSource(k *kernel.Kernel, node netsim.NodeID, now func() time.Time, format string) (*ClockSource, uid.UID, error) {
	if now == nil {
		now = time.Now
	}
	if format == "" {
		format = time.RFC3339
	}
	c := &ClockSource{now: now, format: format}
	id, err := k.Create(c, node)
	if err != nil {
		return nil, uid.Nil, err
	}
	return c, id, nil
}

// EdenType implements kernel.Eject.
func (c *ClockSource) EdenType() string { return "device.ClockSource" }

// Serve implements kernel.Eject: every Transfer gets one timestamp
// item per requested slot (Max timestamps per invocation when
// batching).
func (c *ClockSource) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case transput.OpTransfer:
		req, ok := inv.Payload.(*transput.TransferRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		max := req.Max
		if max <= 0 {
			max = 1
		}
		items := make([][]byte, max)
		for i := range items {
			items[i] = []byte(c.now().Format(c.format) + "\n")
		}
		inv.Reply(&transput.TransferReply{Items: items, Status: transput.StatusOK})
	case transput.OpChannels:
		inv.Reply(&transput.ChannelsReply{Channels: []transput.ChannelAdvert{
			{Name: "Output", ID: transput.Chan(transput.ChannelOutput), Dir: "out"},
		}})
	case transput.OpAbort:
		// A clock has no state to tear down.
		inv.Reply(&transput.AbortReply{})
	default:
		inv.Fail(fmt.Errorf("%w: %q on ClockSource", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// StaticSource registers a read-only source Eject that serves a fixed
// sequence of items and then ends — the in-memory stand-in for "a
// file opened for input" (§4).  It returns the source's UID and its
// primary channel identifier (capability-mode aware).
func StaticSource(k *kernel.Kernel, node netsim.NodeID, items [][]byte, cfg transput.ROStageConfig) (uid.UID, transput.ChannelID, error) {
	cp := make([][]byte, len(items))
	for i, it := range items {
		cp[i] = append([]byte(nil), it...)
	}
	if cfg.Name == "" {
		cfg.Name = "static-source"
	}
	st := transput.NewROStage(k, cfg, func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
		for _, it := range cp {
			if err := outs[0].Put(it); err != nil {
				return err
			}
		}
		return nil
	})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, node); err != nil {
		return uid.Nil, transput.ChannelID{}, err
	}
	if !cfg.LazyStart {
		st.Start()
	}
	return id, st.Writer(0).ID(), nil
}

// CounterSource registers a read-only source emitting n numbered
// lines ("line 0\n" ... ).  Benchmarks use it as a deterministic
// workload generator.
func CounterSource(k *kernel.Kernel, node netsim.NodeID, n int, cfg transput.ROStageConfig) (uid.UID, transput.ChannelID, error) {
	if cfg.Name == "" {
		cfg.Name = "counter-source"
	}
	st := transput.NewROStage(k, cfg, func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
		for i := 0; i < n; i++ {
			if err := outs[0].Put([]byte(fmt.Sprintf("line %d\n", i))); err != nil {
				return err
			}
		}
		return nil
	})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, node); err != nil {
		return uid.Nil, transput.ChannelID{}, err
	}
	if !cfg.LazyStart {
		st.Start()
	}
	return id, st.Writer(0).ID(), nil
}
