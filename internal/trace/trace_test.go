package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

func TestRingCapturesInvocations(t *testing.T) {
	ring := NewRing(256)
	k := kernel.New(kernel.Config{Trace: ring.Record})
	defer k.Shutdown()

	st := transput.NewROStage(k, transput.ROStageConfig{Name: "src"},
		func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
			for i := 0; i < 5; i++ {
				if err := outs[0].Put([]byte("x")); err != nil {
					return err
				}
			}
			return nil
		})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	in := transput.NewInPort(k, uid.Nil, id, transput.Chan(0), transput.InPortConfig{})
	for {
		if _, err := in.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}

	evs := ring.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	counts := ring.CountByOp()
	if counts[transput.OpTransfer] < 5 {
		t.Fatalf("Transfer events = %d, want >= 5 (ops: %v)", counts[transput.OpTransfer], counts)
	}
	for _, ev := range evs {
		if ev.Op == "" || ev.Target.IsNil() {
			t.Fatalf("malformed event %+v", ev)
		}
		if ev.Elapsed <= 0 {
			t.Fatalf("event without elapsed time: %+v", ev)
		}
		if ev.Err != "" {
			t.Fatalf("unexpected error event: %+v", ev)
		}
	}
	// MsgIDs strictly increase in emission order for a single puller.
	for i := 1; i < len(evs); i++ {
		if evs[i].MsgID <= evs[i-1].MsgID {
			t.Fatalf("MsgID order broken at %d: %d then %d", i, evs[i-1].MsgID, evs[i].MsgID)
		}
	}
}

func TestRingCapturesErrors(t *testing.T) {
	ring := NewRing(16)
	k := kernel.New(kernel.Config{Trace: ring.Record})
	defer k.Shutdown()
	_, err := k.Invoke(uid.Nil, uid.New(), "Bogus.Op", &transput.ChannelsRequest{})
	if err == nil {
		t.Fatal("invocation of nothing succeeded")
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Err == "" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingWrapAround(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(kernel.TraceEvent{MsgID: uint64(i + 1), Op: "op"})
	}
	if ring.Total() != 10 {
		t.Fatalf("total = %d", ring.Total())
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.MsgID != uint64(7+i) {
			t.Fatalf("wrap order: %v", evs)
		}
	}
	ring.Reset()
	if len(ring.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
	if ring.Total() != 10 {
		t.Fatal("reset cleared the total")
	}
}

func TestDumpFormat(t *testing.T) {
	ring := NewRing(4)
	ring.Record(kernel.TraceEvent{MsgID: 7, Op: "Transput.Transfer", Target: uid.New(), Elapsed: 1500})
	ring.Record(kernel.TraceEvent{MsgID: 8, Op: "File.Open", Target: uid.New(), Err: "boom"})
	var buf bytes.Buffer
	if err := ring.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#7") || !strings.Contains(out, "Transput.Transfer") {
		t.Fatalf("dump = %q", out)
	}
	if !strings.Contains(out, "ERR boom") {
		t.Fatalf("dump missing error: %q", out)
	}
	if !strings.Contains(out, "external") {
		t.Fatalf("dump missing external marker: %q", out)
	}
}
