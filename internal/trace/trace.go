// Package trace collects kernel invocation events into a bounded ring
// buffer so that sessions and tests can inspect the invocation traffic
// the paper's arguments are about, event by event.
package trace

import (
	"fmt"
	"io"
	"sync"

	"asymstream/internal/kernel"
)

// Ring is a fixed-capacity event collector.  It is safe for
// concurrent use and is intended to be installed as a kernel's Trace
// hook:
//
//	ring := trace.NewRing(1024)
//	k := kernel.New(kernel.Config{Trace: ring.Record})
type Ring struct {
	mu    sync.Mutex
	buf   []kernel.TraceEvent
	next  int
	full  bool
	total int64
}

// NewRing creates a ring retaining the latest n events (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]kernel.TraceEvent, n)}
}

// Record stores one event; it is the kernel.TraceFunc.
func (r *Ring) Record(ev kernel.TraceEvent) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Total reports how many events have ever been recorded.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []kernel.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]kernel.TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]kernel.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset discards all retained events (the total keeps counting).
func (r *Ring) Reset() {
	r.mu.Lock()
	r.next = 0
	r.full = false
	r.mu.Unlock()
}

// Dump writes the retained events to w, one line each:
//
//	#42 Transput.Transfer  0->1  1f2e… -> 9c0a…  312µs
func (r *Ring) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		status := "ok"
		if ev.Err != "" {
			status = "ERR " + ev.Err
		}
		from := "external"
		if !ev.From.IsNil() {
			from = ev.From.String()[:8]
		}
		if _, err := fmt.Fprintf(w, "#%-6d %-24s %d->%d  %s -> %s  %8s  %s\n",
			ev.MsgID, ev.Op, ev.FromNode, ev.ToNode,
			from, ev.Target.String()[:8],
			ev.Elapsed.Round(1000), status); err != nil {
			return err
		}
	}
	return nil
}

// CountByOp aggregates the retained events by operation name — a
// quick per-op histogram of the traffic.
func (r *Ring) CountByOp() map[string]int {
	counts := make(map[string]int)
	for _, ev := range r.Events() {
		counts[ev.Op]++
	}
	return counts
}
