// Package storage implements the "stable storage" beneath the Eden
// kernel's Checkpoint primitive.
//
// Per the paper (§1): "An Eject may perform a Checkpoint operation.
// The effect of Checkpointing is to create a Passive Representation, a
// data structure designed to be durable across system crashes. ...
// The checkpoint primitive is the only mechanism provided by the Eden
// kernel whereby an Eject may access stable storage (i.e. the disk)."
//
// The store keeps, per UID, a version-numbered history of passive
// representations together with the Eden type name needed to
// re-instantiate the Eject on activation.  A Crash of the volatile
// system never touches this store; recovery reads the latest version.
// The history depth is bounded so long-running simulations do not grow
// without limit.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"asymstream/internal/uid"
)

// PassiveRep is one checkpointed state of an Eject.
type PassiveRep struct {
	// EdenType names the type-code that can reconstruct the Eject.
	EdenType string
	// Version is 1 for the first checkpoint and increases by one per
	// checkpoint of the same UID.
	Version uint64
	// Data is the Eject-defined serialised state.
	Data []byte
}

// ErrNotFound is returned when a UID has never checkpointed.
var ErrNotFound = errors.New("storage: no passive representation")

// ErrNoSuchVersion is returned when a requested version has been
// truncated or never existed.
var ErrNoSuchVersion = errors.New("storage: no such version")

// Store is a stable store for passive representations.  It is safe
// for concurrent use.  The zero value is not usable; call NewStore.
type Store struct {
	mu      sync.RWMutex
	history int
	reps    map[uid.UID][]PassiveRep // ascending by Version
	writes  int64
}

// NewStore creates a Store that retains up to history versions per
// UID (minimum 1).
func NewStore(history int) *Store {
	if history < 1 {
		history = 1
	}
	return &Store{history: history, reps: make(map[uid.UID][]PassiveRep)}
}

// Checkpoint appends a new passive representation for id and returns
// its version number.  The data slice is copied, so the caller may
// reuse its buffer.
func (s *Store) Checkpoint(id uid.UID, edenType string, data []byte) (uint64, error) {
	if id.IsNil() {
		return 0, errors.New("storage: nil UID")
	}
	if edenType == "" {
		return 0, errors.New("storage: empty Eden type")
	}
	cp := make([]byte, len(data))
	copy(cp, data)

	s.mu.Lock()
	defer s.mu.Unlock()
	hist := s.reps[id]
	var version uint64 = 1
	if len(hist) > 0 {
		last := hist[len(hist)-1]
		if last.EdenType != edenType {
			return 0, fmt.Errorf("storage: %s checkpointed as %q, was %q", id, edenType, last.EdenType)
		}
		version = last.Version + 1
	}
	hist = append(hist, PassiveRep{EdenType: edenType, Version: version, Data: cp})
	if len(hist) > s.history {
		hist = hist[len(hist)-s.history:]
	}
	s.reps[id] = hist
	s.writes++
	return version, nil
}

// GroupEntry is one member of an atomic group checkpoint.
type GroupEntry struct {
	ID       uid.UID
	EdenType string
	Data     []byte
}

// CheckpointGroup commits several passive representations atomically:
// either every entry gains a new version or none does.  This is the
// transaction-free subset of the full Eden file system's "atomic
// updates" (§7 cites the Eden Transaction-Based File System design);
// the store is the single commit point, so atomicity is simply
// holding the lock across the validations and the writes.
func (s *Store) CheckpointGroup(entries []GroupEntry) ([]uint64, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	seen := make(map[uid.UID]bool, len(entries))
	for _, e := range entries {
		if e.ID.IsNil() {
			return nil, errors.New("storage: nil UID in group")
		}
		if e.EdenType == "" {
			return nil, errors.New("storage: empty Eden type in group")
		}
		if seen[e.ID] {
			return nil, fmt.Errorf("storage: duplicate UID %s in group", e.ID)
		}
		seen[e.ID] = true
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Validate everything before mutating anything.
	versions := make([]uint64, len(entries))
	for i, e := range entries {
		hist := s.reps[e.ID]
		versions[i] = 1
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			if last.EdenType != e.EdenType {
				return nil, fmt.Errorf("storage: %s checkpointed as %q, was %q (group aborted)",
					e.ID, e.EdenType, last.EdenType)
			}
			versions[i] = last.Version + 1
		}
	}
	// Commit.
	for i, e := range entries {
		cp := make([]byte, len(e.Data))
		copy(cp, e.Data)
		hist := append(s.reps[e.ID], PassiveRep{EdenType: e.EdenType, Version: versions[i], Data: cp})
		if len(hist) > s.history {
			hist = hist[len(hist)-s.history:]
		}
		s.reps[e.ID] = hist
		s.writes++
	}
	return versions, nil
}

// Latest returns the most recent passive representation for id.
func (s *Store) Latest(id uid.UID) (PassiveRep, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hist := s.reps[id]
	if len(hist) == 0 {
		return PassiveRep{}, ErrNotFound
	}
	rep := hist[len(hist)-1]
	rep.Data = append([]byte(nil), rep.Data...)
	return rep, nil
}

// Version returns a specific checkpointed version for id.
func (s *Store) Version(id uid.UID, version uint64) (PassiveRep, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hist := s.reps[id]
	if len(hist) == 0 {
		return PassiveRep{}, ErrNotFound
	}
	for _, rep := range hist {
		if rep.Version == version {
			rep.Data = append([]byte(nil), rep.Data...)
			return rep, nil
		}
	}
	return PassiveRep{}, fmt.Errorf("%w: %s v%d", ErrNoSuchVersion, id, version)
}

// Exists reports whether id has ever checkpointed.
func (s *Store) Exists(id uid.UID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.reps[id]) > 0
}

// Delete removes every passive representation of id (an Eject that
// deactivates without checkpointing "disappears", §7; an Eject that is
// destroyed does so explicitly).
func (s *Store) Delete(id uid.UID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.reps, id)
}

// UIDs lists, in canonical order, every UID with stored state.
func (s *Store) UIDs() []uid.UID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]uid.UID, 0, len(s.reps))
	for id := range s.reps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// Writes reports the total number of checkpoints ever taken.
func (s *Store) Writes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.writes
}
