package storage

import (
	"errors"
	"testing"
	"testing/quick"

	"asymstream/internal/uid"
)

func TestCheckpointAndLatest(t *testing.T) {
	s := NewStore(4)
	id := uid.New()
	v, err := s.Checkpoint(id, "test.Type", []byte("state1"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first version = %d, want 1", v)
	}
	rep, err := s.Latest(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdenType != "test.Type" || string(rep.Data) != "state1" || rep.Version != 1 {
		t.Fatalf("latest = %+v", rep)
	}
}

func TestVersionsIncrease(t *testing.T) {
	s := NewStore(10)
	id := uid.New()
	for i := 1; i <= 5; i++ {
		v, err := s.Checkpoint(id, "t", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i) {
			t.Fatalf("version = %d, want %d", v, i)
		}
	}
	rep, err := s.Version(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Data[0] != 3 {
		t.Fatalf("version 3 data = %v", rep.Data)
	}
}

func TestHistoryTruncation(t *testing.T) {
	s := NewStore(2)
	id := uid.New()
	for i := 1; i <= 5; i++ {
		if _, err := s.Checkpoint(id, "t", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Version(id, 1); !errors.Is(err, ErrNoSuchVersion) {
		t.Errorf("truncated version should be gone, got %v", err)
	}
	if rep, err := s.Version(id, 5); err != nil || rep.Data[0] != 5 {
		t.Errorf("latest version missing: %v %v", rep, err)
	}
	if rep, err := s.Version(id, 4); err != nil || rep.Data[0] != 4 {
		t.Errorf("second-latest version missing: %v %v", rep, err)
	}
}

func TestLatestMissing(t *testing.T) {
	s := NewStore(1)
	if _, err := s.Latest(uid.New()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := s.Version(uid.New(), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	s := NewStore(4)
	id := uid.New()
	if _, err := s.Checkpoint(id, "typeA", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(id, "typeB", nil); err == nil {
		t.Fatal("type change across checkpoints must be rejected")
	}
}

func TestBadInputs(t *testing.T) {
	s := NewStore(1)
	if _, err := s.Checkpoint(uid.Nil, "t", nil); err == nil {
		t.Error("nil UID accepted")
	}
	if _, err := s.Checkpoint(uid.New(), "", nil); err == nil {
		t.Error("empty type accepted")
	}
}

func TestDataIsCopied(t *testing.T) {
	s := NewStore(1)
	id := uid.New()
	buf := []byte("original")
	if _, err := s.Checkpoint(id, "t", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!")
	rep, err := s.Latest(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Data) != "original" {
		t.Fatalf("stored data aliased caller's buffer: %q", rep.Data)
	}
	// And the returned copy must not alias the store.
	rep.Data[0] = 'X'
	rep2, _ := s.Latest(id)
	if string(rep2.Data) != "original" {
		t.Fatal("Latest returned an aliasing slice")
	}
}

func TestDeleteAndExists(t *testing.T) {
	s := NewStore(1)
	id := uid.New()
	if s.Exists(id) {
		t.Fatal("Exists before checkpoint")
	}
	if _, err := s.Checkpoint(id, "t", nil); err != nil {
		t.Fatal(err)
	}
	if !s.Exists(id) {
		t.Fatal("not Exists after checkpoint")
	}
	s.Delete(id)
	if s.Exists(id) {
		t.Fatal("Exists after delete")
	}
	s.Delete(id) // idempotent
}

func TestUIDsSorted(t *testing.T) {
	s := NewStore(1)
	for i := 0; i < 20; i++ {
		if _, err := s.Checkpoint(uid.New(), "t", nil); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.UIDs()
	if len(ids) != 20 {
		t.Fatalf("UIDs() len = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if !ids[i-1].Less(ids[i]) {
			t.Fatalf("UIDs not sorted at %d", i)
		}
	}
	if s.Writes() != 20 {
		t.Fatalf("Writes() = %d", s.Writes())
	}
}

func TestCheckpointDataRoundTripProperty(t *testing.T) {
	s := NewStore(3)
	f := func(data []byte) bool {
		id := uid.New()
		if _, err := s.Checkpoint(id, "t", data); err != nil {
			return false
		}
		rep, err := s.Latest(id)
		if err != nil {
			return false
		}
		if len(rep.Data) != len(data) {
			return false
		}
		for i := range data {
			if rep.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
