package main

import (
	"path/filepath"
	"testing"
)

// TestResolveSuitePaths pins the deprecated -json-out-* aliases to the
// -json-dir layout: with no overrides every suite file lands in the
// directory under its canonical name, and an override redirects its
// own file without disturbing the others.
func TestResolveSuitePaths(t *testing.T) {
	defaults := resolveSuitePaths("out", [len(suiteNames)]string{})
	for i, name := range suiteNames {
		if want := filepath.Join("out", name); defaults[i] != want {
			t.Errorf("default path[%d] = %q, want %q", i, defaults[i], want)
		}
	}

	var overrides [len(suiteNames)]string
	overrides[0] = "legacy/kernel.json"
	overrides[5] = "legacy/wire.json"
	got := resolveSuitePaths("out", overrides)
	for i := range suiteNames {
		want := defaults[i]
		if overrides[i] != "" {
			want = overrides[i]
		}
		if got[i] != want {
			t.Errorf("path[%d] = %q, want %q", i, got[i], want)
		}
	}
}

// TestSuiteNamesStable keeps the file set itself from drifting: tools
// downstream (Makefile bench targets, EXPERIMENTS.md) key on these
// exact names.
func TestSuiteNamesStable(t *testing.T) {
	want := []string{
		"BENCH_kernel.json",
		"BENCH_transput.json",
		"BENCH_codec.json",
		"BENCH_fusion.json",
		"BENCH_gateway.json",
		"BENCH_transport.json",
	}
	if len(suiteNames) != len(want) {
		t.Fatalf("suite has %d files, want %d", len(suiteNames), len(want))
	}
	for i, w := range want {
		if suiteNames[i] != w {
			t.Errorf("suiteNames[%d] = %q, want %q", i, suiteNames[i], w)
		}
	}
}
