// Command transput-bench regenerates the reproduction's experiment
// tables (DESIGN.md §4, EXPERIMENTS.md): the Figure 1–4 topologies,
// the invocation/Eject counting claims, the laziness and security
// properties, and the ablations.
//
// Usage:
//
//	transput-bench                 # run every experiment at full size
//	transput-bench -quick          # smaller workloads (CI speed)
//	transput-bench -exp e2,e3      # selected experiments
//	transput-bench -list           # list experiment ids
//	transput-bench -check          # verify the paper's counting claims — sequential AND
//	                               # sharded/windowed pipelines; exit 1 on violation
//	transput-bench -json           # write BENCH_kernel.json (ns/op, allocs/op, inv/datum
//	                               # for the four Figure 1/2 pipeline shapes),
//	                               # BENCH_transput.json (the parallel engine's
//	                               # shards × window scaling grid),
//	                               # BENCH_codec.json (gob vs wire codec costs and the
//	                               # fixed vs adaptive batching grid) and
//	                               # BENCH_fusion.json (the stage-fusion compiler's
//	                               # fused vs unfused grid) and
//	                               # BENCH_gateway.json (the ingress-gateway
//	                               # control-plane run: admission, idle footprint,
//	                               # steady-state throughput, churn)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asymstream/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "run reduced workloads")
		exp   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		items = flag.Int("items", 0, "override stream length per run")
		check = flag.Bool("check", false, "verify the paper's counting claims and exit")
		jsonl = flag.Bool("json", false, "write machine-readable pipeline costs to -json-out, -json-out-transput and -json-out-codec, then exit")
		jout  = flag.String("json-out", "BENCH_kernel.json", "output path for the -json kernel costs")
		tout  = flag.String("json-out-transput", "BENCH_transput.json", "output path for the -json parallel-engine grid")
		cout  = flag.String("json-out-codec", "BENCH_codec.json", "output path for the -json codec and batching grids")
		fout  = flag.String("json-out-fusion", "BENCH_fusion.json", "output path for the -json fused-vs-unfused grid")
		gout  = flag.String("json-out-gateway", "BENCH_gateway.json", "output path for the -json ingress-gateway control-plane run")
		jn    = flag.Int("json-n", 4, "filter count for the -json pipelines")
	)
	flag.Parse()

	if *jsonl {
		p := experiments.DefaultParams(*quick)
		if *items > 0 {
			p.Items = *items
		}
		if err := experiments.WriteBenchJSON(*jout, *jn, p.Items); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (n=%d, items=%d)\n", *jout, *jn, p.Items)
		if err := experiments.WriteParallelBenchJSON(*tout, p.Items); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (items=%d)\n", *tout, p.Items)
		if err := experiments.WriteCodecBenchJSON(*cout, *jn, p.Items); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (n=%d, items=%d)\n", *cout, *jn, p.Items)
		if err := experiments.WriteFusionBenchJSON(*fout, p.Items); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (items=%d)\n", *fout, p.Items)
		pairs, hot, gi := 100_000, 256, 2_000
		if *quick {
			pairs, hot, gi = 2_000, 16, 200
		}
		if err := experiments.WriteGatewayBenchJSON(*gout, pairs, hot, gi); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (pairs=%d, hot=%d, items=%d)\n", *gout, pairs, hot, gi)
		return
	}

	if *check {
		p := experiments.DefaultParams(*quick)
		if *items > 0 {
			p.Items = *items
		}
		violations := experiments.Verify(p)
		if len(violations) == 0 {
			fmt.Println("all counting claims hold (n+1 vs 2n+2 invocations, n+2 vs 2n+3 Ejects, duality, Figure 1)")
			fmt.Println("parallel engine holds (byte-identical sink output at shards=4/window=4, inv/datum unchanged, Ejects scale to n·P+2)")
			fmt.Println("fusion compiler holds (byte-identical output, 2 Ejects / ~1 inv per datum co-located, fusion off reproduces paper counts)")
			return
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "VIOLATION:", v)
		}
		os.Exit(1)
	}

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", s.ID, s.Short)
		}
		return
	}

	p := experiments.DefaultParams(*quick)
	if *items > 0 {
		p.Items = *items
	}
	var ids []string
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if err := experiments.Run(ids, p, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "transput-bench:", err)
		os.Exit(1)
	}
}
