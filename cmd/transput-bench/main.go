// Command transput-bench regenerates the reproduction's experiment
// tables (DESIGN.md §4, EXPERIMENTS.md): the Figure 1–4 topologies,
// the invocation/Eject counting claims, the laziness and security
// properties, and the ablations.
//
// Usage:
//
//	transput-bench                 # run every experiment at full size
//	transput-bench -quick          # smaller workloads (CI speed)
//	transput-bench -exp e2,e3      # selected experiments
//	transput-bench -list           # list experiment ids
//	transput-bench -check          # verify the paper's counting claims — sequential AND
//	                               # sharded/windowed pipelines AND real-wire transports;
//	                               # exit 1 on violation
//	transput-bench -json           # write the BENCH_*.json suite into -json-dir:
//	                               # BENCH_kernel.json (ns/op, allocs/op, inv/datum
//	                               # for the four Figure 1/2 pipeline shapes),
//	                               # BENCH_transput.json (the parallel engine's
//	                               # shards × window scaling grid),
//	                               # BENCH_codec.json (gob vs wire codec costs and the
//	                               # fixed vs adaptive batching grid),
//	                               # BENCH_fusion.json (the stage-fusion compiler's
//	                               # fused vs unfused grid),
//	                               # BENCH_gateway.json (the ingress-gateway
//	                               # control-plane run: admission, idle footprint,
//	                               # steady-state throughput, churn) and
//	                               # BENCH_transport.json (the real-wire grid:
//	                               # netsim vs Unix-domain vs TCP loopback)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"asymstream/internal/experiments"
)

// suiteNames are the files the -json suite writes, in write order.
// The deprecated -json-out-* flags override them one-for-one.
var suiteNames = [...]string{
	"BENCH_kernel.json",
	"BENCH_transput.json",
	"BENCH_codec.json",
	"BENCH_fusion.json",
	"BENCH_gateway.json",
	"BENCH_transport.json",
}

// resolveSuitePaths maps -json-dir plus the deprecated per-file
// overrides onto the suite's output paths: an override wins only for
// its own file, everything else lands in dir under its canonical name.
func resolveSuitePaths(dir string, overrides [len(suiteNames)]string) [len(suiteNames)]string {
	var out [len(suiteNames)]string
	for i, name := range suiteNames {
		if overrides[i] != "" {
			out[i] = overrides[i]
			continue
		}
		out[i] = filepath.Join(dir, name)
	}
	return out
}

func main() {
	var (
		quick = flag.Bool("quick", false, "run reduced workloads")
		exp   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		items = flag.Int("items", 0, "override stream length per run")
		check = flag.Bool("check", false, "verify the paper's counting claims and exit")
		jsonl = flag.Bool("json", false, "write the machine-readable BENCH_*.json suite into -json-dir, then exit")
		jdir  = flag.String("json-dir", ".", "directory the -json suite is written into")
		jout  = flag.String("json-out", "", "deprecated: overrides the BENCH_kernel.json path (use -json-dir)")
		tout  = flag.String("json-out-transput", "", "deprecated: overrides the BENCH_transput.json path (use -json-dir)")
		cout  = flag.String("json-out-codec", "", "deprecated: overrides the BENCH_codec.json path (use -json-dir)")
		fout  = flag.String("json-out-fusion", "", "deprecated: overrides the BENCH_fusion.json path (use -json-dir)")
		gout  = flag.String("json-out-gateway", "", "deprecated: overrides the BENCH_gateway.json path (use -json-dir)")
		wout  = flag.String("json-out-transport", "", "deprecated: overrides the BENCH_transport.json path (use -json-dir)")
		jn    = flag.Int("json-n", 4, "filter count for the -json pipelines")
	)
	flag.Parse()

	paths := resolveSuitePaths(*jdir, [len(suiteNames)]string{*jout, *tout, *cout, *fout, *gout, *wout})
	dest := func(i int) string { return paths[i] }

	if *jsonl {
		if err := os.MkdirAll(*jdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		p := experiments.DefaultParams(*quick)
		if *items > 0 {
			p.Items = *items
		}
		out := dest(0)
		if err := experiments.WriteBenchJSON(out, *jn, p.Items); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (n=%d, items=%d)\n", out, *jn, p.Items)
		out = dest(1)
		if err := experiments.WriteParallelBenchJSON(out, p.Items); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (items=%d)\n", out, p.Items)
		out = dest(2)
		if err := experiments.WriteCodecBenchJSON(out, *jn, p.Items); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (n=%d, items=%d)\n", out, *jn, p.Items)
		out = dest(3)
		if err := experiments.WriteFusionBenchJSON(out, p.Items); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (items=%d)\n", out, p.Items)
		pairs, hot, gi := 100_000, 256, 2_000
		if *quick {
			pairs, hot, gi = 2_000, 16, 200
		}
		out = dest(4)
		if err := experiments.WriteGatewayBenchJSON(out, pairs, hot, gi); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (pairs=%d, hot=%d, items=%d)\n", out, pairs, hot, gi)
		rounds, ti := 2_000, p.Items
		if *quick {
			rounds = 300
		}
		out = dest(5)
		if err := experiments.WriteTransportBenchJSON(out, rounds, ti); err != nil {
			fmt.Fprintln(os.Stderr, "transput-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (rounds=%d, items=%d)\n", out, rounds, ti)
		return
	}

	if *check {
		p := experiments.DefaultParams(*quick)
		if *items > 0 {
			p.Items = *items
		}
		violations := experiments.Verify(p)
		if len(violations) == 0 {
			fmt.Println("all counting claims hold (n+1 vs 2n+2 invocations, n+2 vs 2n+3 Ejects, duality, Figure 1)")
			fmt.Println("parallel engine holds (byte-identical sink output at shards=4/window=4, inv/datum unchanged, Ejects scale to n·P+2)")
			fmt.Println("fusion compiler holds (byte-identical output, 2 Ejects / ~1 inv per datum co-located, fusion off reproduces paper counts)")
			fmt.Println("real wire holds (byte-identical digests over UDS and TCP, paper counts at batch 1, slab audit clean under abort)")
			return
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "VIOLATION:", v)
		}
		os.Exit(1)
	}

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", s.ID, s.Short)
		}
		return
	}

	p := experiments.DefaultParams(*quick)
	if *items > 0 {
		p.Items = *items
	}
	var ids []string
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if err := experiments.Run(ids, p, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "transput-bench:", err)
		os.Exit(1)
	}
}
