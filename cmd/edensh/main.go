// Command edensh is an interactive shell over a simulated Eden
// system: it assembles transput pipelines from a Unix-like command
// syntax and runs them under any of the three disciplines.
//
//	$ edensh
//	eden> put /etc/motd "C a comment\nhello world\nC another\n"
//	eden> file /etc/motd | strip C | upcase | print
//	HELLO WORLD
//	[read-only discipline, 3 ejects, 312µs]
//	eden> count 10 | head 3 | print discipline=writeonly
//
// One-shot mode: edensh -c 'count 5 | upcase | print'.
// Script mode:   edensh -f pipeline.eden (one command per line).
//
// Separate-OS-process mode: `edensh -serve unix:/tmp/eden.sock` turns
// the session into a bridge server; another edensh then streams out of
// it with `remote unix:/tmp/eden.sock count 100 | upcase | print`.
// TCP works too: -serve tcp:127.0.0.1:7070.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"asymstream/internal/shell"
	"asymstream/internal/transport"
)

func main() {
	oneShot := flag.String("c", "", "run one line and exit")
	script := flag.String("f", "", "run a script file (one command per line) and exit")
	serve := flag.String("serve", "", "serve this session's streams to other processes (unix:PATH or tcp:HOST:PORT)")
	flag.Parse()

	sess, err := shell.NewSession(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edensh:", err)
		os.Exit(1)
	}
	defer sess.Close()

	if *serve != "" {
		if err := transport.RegisterControl(sess.K, sess.Opener()); err != nil {
			fmt.Fprintln(os.Stderr, "edensh:", err)
			os.Exit(1)
		}
		ln, err := transport.Listen(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edensh:", err)
			os.Exit(1)
		}
		fmt.Printf("edensh: serving streams on %s (ctrl-C to stop)\n", *serve)
		if err := transport.Serve(ln, sess.K); err != nil {
			fmt.Fprintln(os.Stderr, "edensh:", err)
			os.Exit(1)
		}
		return
	}

	if *oneShot != "" {
		if err := sess.Execute(*oneShot); err != nil {
			fmt.Fprintln(os.Stderr, "edensh:", err)
			os.Exit(1)
		}
		return
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edensh:", err)
			os.Exit(1)
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			if err := sess.Execute(line); err != nil {
				fmt.Fprintf(os.Stderr, "edensh: %s:%d: %v\n", *script, lineNo+1, err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("edensh — asymmetric stream transput shell ('help' for help, ctrl-D to exit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("eden> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		if err := sess.Execute(sc.Text()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}
