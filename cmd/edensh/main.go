// Command edensh is an interactive shell over a simulated Eden
// system: it assembles transput pipelines from a Unix-like command
// syntax and runs them under any of the three disciplines.
//
//	$ edensh
//	eden> put /etc/motd "C a comment\nhello world\nC another\n"
//	eden> file /etc/motd | strip C | upcase | print
//	HELLO WORLD
//	[read-only discipline, 3 ejects, 312µs]
//	eden> count 10 | head 3 | print discipline=writeonly
//
// One-shot mode: edensh -c 'count 5 | upcase | print'.
// Script mode:   edensh -f pipeline.eden (one command per line).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"asymstream/internal/shell"
)

func main() {
	oneShot := flag.String("c", "", "run one line and exit")
	script := flag.String("f", "", "run a script file (one command per line) and exit")
	flag.Parse()

	sess, err := shell.NewSession(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edensh:", err)
		os.Exit(1)
	}
	defer sess.Close()

	if *oneShot != "" {
		if err := sess.Execute(*oneShot); err != nil {
			fmt.Fprintln(os.Stderr, "edensh:", err)
			os.Exit(1)
		}
		return
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edensh:", err)
			os.Exit(1)
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			if err := sess.Execute(line); err != nil {
				fmt.Fprintf(os.Stderr, "edensh: %s:%d: %v\n", *script, lineNo+1, err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("edensh — asymmetric stream transput shell ('help' for help, ctrl-D to exit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("eden> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		if err := sess.Execute(sc.Text()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}
