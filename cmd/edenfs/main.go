// Command edenfs is an interactive shell over the Eden file system:
// files and directories are Ejects, writes happen by pulling (§4),
// Checkpoint commits to stable storage (§2), and the simulated
// machine can crash and reboot without losing committed state.
//
//	$ edenfs
//	edenfs> mkfile poem
//	edenfs> write poem "so much depends\nupon\n"
//	40 bytes committed (checkpoint v1)
//	edenfs> sync
//	edenfs> crash
//	edenfs> cat poem
//	so much depends
//	upon
//
// One-shot mode: edenfs -c 'mkfile f; write f "hi\n"; cat f'
// (semicolons separate commands).
//
// Separate-OS-process mode: `edenfs -c '...' -serve unix:/tmp/fs.sock`
// runs the setup commands, then serves committed files to other
// processes; an edensh in another terminal reads one with
// `remote unix:/tmp/fs.sock file poem | print`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"asymstream/internal/fsshell"
	"asymstream/internal/transport"
)

func main() {
	oneShot := flag.String("c", "", "run semicolon-separated commands and exit")
	serve := flag.String("serve", "", "after -c commands, serve files to other processes (unix:PATH or tcp:HOST:PORT)")
	flag.Parse()

	sess, err := fsshell.NewSession(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edenfs:", err)
		os.Exit(1)
	}
	defer sess.Close()

	if *oneShot != "" {
		for _, line := range strings.Split(*oneShot, ";") {
			if err := sess.Execute(strings.TrimSpace(line)); err != nil {
				fmt.Fprintln(os.Stderr, "edenfs:", err)
				os.Exit(1)
			}
		}
		if *serve == "" {
			return
		}
	}

	if *serve != "" {
		if err := transport.RegisterControl(sess.Kernel(), sess.Opener()); err != nil {
			fmt.Fprintln(os.Stderr, "edenfs:", err)
			os.Exit(1)
		}
		ln, err := transport.Listen(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edenfs:", err)
			os.Exit(1)
		}
		fmt.Printf("edenfs: serving files on %s (ctrl-C to stop)\n", *serve)
		if err := transport.Serve(ln, sess.Kernel()); err != nil {
			fmt.Fprintln(os.Stderr, "edenfs:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("edenfs — Eden file system shell ('help' for help, ctrl-D to exit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("edenfs> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		if err := sess.Execute(sc.Text()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}
