// Command transput-vet runs the module's custom static analyzers
// (internal/analysis) over the whole repository:
//
//	transput-vet                      # run every analyzer over the module
//	transput-vet -run slab            # only analyzers matching the regex
//	transput-vet -list                # list analyzers and exit
//	transput-vet -json                # findings as a JSON array on stdout
//	transput-vet -github              # findings as GitHub workflow annotations
//	transput-vet -protomodel-selftest # verify the model checker catches its
//	                                  # own seeded mutants, then exit
//
// Diagnostics print as file:line:col: [analyzer] message; any finding
// exits 1, which is how `make vet-custom` gates CI.
//
// The protomodel exploration bounds are tunable for the nightly deep
// run: -protomodel-window, -protomodel-writers and
// -protomodel-max-states override the defaults (4, 2, 4M), and
// -protomodel-stats FILE writes the explored-space summary
// (states/transitions/violations) as JSON for upload as a CI artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"asymstream/internal/analysis"
)

// jsonDiag is the -json wire shape: flat, stable field names, one
// object per finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// githubEscape makes a message safe for the workflow-command data
// section, which terminates on a raw newline and decodes %xx.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func main() {
	var (
		dir     = flag.String("dir", ".", "module root to analyze")
		run     = flag.String("run", "", "regex selecting analyzers to run (default all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		asJSON  = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		github  = flag.Bool("github", false, "emit findings as GitHub ::error annotations")
		pmWin   = flag.Int("protomodel-window", analysis.ProtoWindow, "protomodel: window size K")
		pmWr    = flag.Int("protomodel-writers", analysis.ProtoWriters, "protomodel: concurrent writers P")
		pmMax   = flag.Int("protomodel-max-states", analysis.ProtoMaxStates, "protomodel: exploration state cap")
		pmSelf  = flag.Bool("protomodel-selftest", false, "run the seeded-mutant self-test and exit")
		pmStats = flag.String("protomodel-stats", "", "write protomodel exploration stats as JSON to this file")
	)
	flag.Parse()

	analysis.ProtoWindow = *pmWin
	analysis.ProtoWriters = *pmWr
	analysis.ProtoMaxStates = *pmMax

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *pmSelf {
		if err := analysis.ProtoModelSelfTest(*pmWin, *pmWr, *pmMax); err != nil {
			fmt.Fprintf(os.Stderr, "transput-vet: protomodel self-test FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("protomodel self-test ok: clean protocol explores clean at K=%d P=%d; all 3 seeded mutants detected\n", *pmWin, *pmWr)
		if *pmStats != "" {
			if err := writeStats(*pmStats, *pmWin, *pmWr, *pmMax); err != nil {
				fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
				os.Exit(2)
			}
		}
		return
	}

	selected := all
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "transput-vet: bad -run regex: %v\n", err)
			os.Exit(2)
		}
		selected = nil
		for _, a := range all {
			if re.MatchString(a.Name) {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "transput-vet: no analyzers match %q\n", *run)
			os.Exit(2)
		}
	}

	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
		os.Exit(2)
	}
	prog, err := loader.Load()
	if err != nil {
		fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
		os.Exit(2)
	}

	switch {
	case *asJSON:
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
			os.Exit(2)
		}
	case *github:
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column,
				githubEscape(fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)))
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	if *pmStats != "" {
		if err := writeStats(*pmStats, *pmWin, *pmWr, *pmMax); err != nil {
			fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "transput-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func writeStats(path string, window, writers, maxStates int) error {
	rep := analysis.ProtoModelRun(window, writers, maxStates)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
