// Command transput-vet runs the module's custom static analyzers
// (internal/analysis) over the whole repository:
//
//	transput-vet            # run every analyzer over the module
//	transput-vet -run slab  # only analyzers matching the regex
//	transput-vet -list      # list analyzers and exit
//
// Diagnostics print as file:line:col: [analyzer] message; any finding
// exits 1, which is how `make vet-custom` gates CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"asymstream/internal/analysis"
)

func main() {
	var (
		dir  = flag.String("dir", ".", "module root to analyze")
		run  = flag.String("run", "", "regex selecting analyzers to run (default all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected := all
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "transput-vet: bad -run regex: %v\n", err)
			os.Exit(2)
		}
		selected = nil
		for _, a := range all {
			if re.MatchString(a.Name) {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "transput-vet: no analyzers match %q\n", *run)
			os.Exit(2)
		}
	}

	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
		os.Exit(2)
	}
	prog, err := loader.Load()
	if err != nil {
		fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "transput-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "transput-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
