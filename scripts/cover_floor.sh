#!/bin/sh
# cover_floor.sh <package-dir> <min-percent>
# Fails when `go test -cover` statement coverage for ./<package-dir>/
# drops below <min-percent>.  Used by `make cover-floor`.
set -eu

pkg=$1
floor=$2

out=$(${GO:-go} test -cover "./$pkg/" 2>&1) || {
	echo "$out"
	exit 1
}
pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p' | head -1)
if [ -z "$pct" ]; then
	echo "cover-floor: could not parse coverage for $pkg:"
	echo "$out"
	exit 1
fi
ok=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
	echo "cover-floor: $pkg coverage $pct% is below the $floor% floor"
	exit 1
fi
echo "cover-floor: $pkg $pct% >= $floor%"
