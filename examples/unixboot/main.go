// Unixboot: §7's bootstrap transput system, end to end.
//
// "NewStream takes as input a Unix path name, and returns as its
// result an Eden stream ... UseStream does the opposite; it takes as
// input a Unix path name and a Capability for a stream, and creates a
// UnixFile Eject which repeatedly invokes Transfer on the capability
// and records the data it receives."
//
// The example seeds a (simulated) Unix file, opens it as an Eden
// stream, pulls it through a comment-stripping filter Eject, and
// records the result back into the Unix file system — the exact round
// trip the 1983 prototype used to reach data that still lived in Unix.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"asymstream"
	"asymstream/internal/fsys"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
	"asymstream/internal/unixfs"
)

func main() {
	sys := asymstream.NewSystem(asymstream.SystemConfig{})
	defer sys.Close()
	k := sys.Kernel()

	ufs, ufsUID, err := unixfs.New(k, 0, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Seed the host FS with a Fortran-flavoured file.
	must(ufs.Host().MkdirAll("/usr/src"))
	must(ufs.Host().WriteFile("/usr/src/prog.f",
		[]byte("C     MAIN PROGRAM\n      CALL WORK\nC     DONE\n      END\n")))

	// NewStream: wrap the Unix file in a transient UnixFile Eject.
	in, err := unixfs.NewStream(k, uid.Nil, ufsUID, "/usr/src/prog.f")
	must(err)
	fmt.Printf("NewStream(/usr/src/prog.f) -> capability %s %s\n", in.UID, in.Channel)

	// A filter Eject in the read-only discipline: it pulls from the
	// UnixFile (active input) and answers Transfer invocations with
	// the stripped stream (passive output).  No Write exists anywhere.
	stripUID := k.NewUID()
	stripIn := transput.NewInPort(k, stripUID, in.UID, in.Channel, transput.InPortConfig{Batch: 4})
	stripStage := transput.NewROStage(k, transput.ROStageConfig{Name: "strip-comments"},
		func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
			for {
				item, err := ins[0].Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if bytes.HasPrefix(item, []byte("C")) {
					continue
				}
				if err := outs[0].Put(item); err != nil {
					return err
				}
			}
		}, stripIn)
	must(k.CreateWithUID(stripUID, stripStage, 0))
	stripStage.Start()

	// UseStream: the write-side UnixFile pulls the filter's output to
	// completion and then writes the host file.
	rep, err := unixfs.UseStream(k, uid.Nil, ufsUID, "/usr/src/prog.stripped.f",
		fsys.StreamRef{UID: stripUID, Channel: stripStage.Writer(0).ID()})
	must(err)
	fmt.Printf("UseStream recorded %d items, %d bytes\n", rep.Items, rep.Bytes)

	out, err := ufs.Host().ReadFile("/usr/src/prog.stripped.f")
	must(err)
	fmt.Printf("resulting Unix file:\n%s", out)

	names, err := ufs.Host().ReadDir("/usr/src")
	must(err)
	fmt.Printf("/usr/src now holds: %v\n", names)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
