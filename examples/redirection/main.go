// Redirection: §8's headline — "Redirection of input and output can be
// provided very naturally in a system where each entity is referred to
// by means of a unique identifier.  Special file or stream descriptors
// are not needed."
//
// A live consumer is switched between three sources mid-stream: a
// file's read stream, a running filter pipeline, and the date/time
// source — demonstrating that "there is no distinction between input
// redirection from a file and from a program" (§4): every case is the
// same (UID, channel) pair.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"asymstream"
	"asymstream/internal/device"
	"asymstream/internal/fsys"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

func main() {
	sys := asymstream.NewSystem(asymstream.SystemConfig{})
	defer sys.Close()
	k := sys.Kernel()
	fsys.RegisterTypes(k)

	// Source 1: a file Eject.
	_, fileUID, err := fsys.NewFileWithContent(k, 0,
		[]byte("from the file: line 1\nfrom the file: line 2\n"))
	must(err)
	fileRef, err := fsys.Open(k, uid.Nil, fileUID, nil)
	must(err)

	// Source 2: a running filter stage (upcasing its own generator).
	stage := transput.NewROStage(k, transput.ROStageConfig{Name: "generator"},
		func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
			for i := 1; i <= 2; i++ {
				if err := outs[0].Put([]byte(fmt.Sprintf("FROM THE PIPELINE: LINE %d\n", i))); err != nil {
					return err
				}
			}
			return nil
		})
	stageUID := k.NewUID()
	must(k.CreateWithUID(stageUID, stage, 0))
	stage.Start()

	// Source 3: the clock device — an endless source we abandon.
	fixed := time.Date(1983, 10, 10, 9, 30, 0, 0, time.UTC)
	_, clockUID, err := device.NewClockSource(k, 0, func() time.Time { return fixed }, time.Kitchen)
	must(err)

	// One consumer, redirected twice while running.
	in := transput.NewInPort(k, uid.Nil, fileRef.UID, fileRef.Channel, transput.InPortConfig{})
	drainUntilEOF(in)

	fmt.Println("-- redirect to the pipeline (same two words as redirecting to a file) --")
	must(in.Redirect(stageUID, stage.Writer(0).ID(), ""))
	drainUntilEOF(in)

	fmt.Println("-- redirect to the clock (an endless device source) --")
	must(in.Redirect(clockUID, transput.Chan(0), ""))
	for i := 0; i < 2; i++ {
		item, err := in.Next()
		must(err)
		fmt.Printf("from the clock: %s", item)
	}
	in.Cancel("done")
}

func drainUntilEOF(in *transput.InPort) {
	for {
		item, err := in.Next()
		if err == io.EOF {
			return
		}
		must(err)
		fmt.Print(string(item))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
