// Reports: the paper's Figures 3 and 4 side by side.
//
// A three-stage pipeline whose source and first filter also emit
// monitoring Reports to a shared window.  Run first in the write-only
// discipline (Figure 3: reports are *pushed*, and the window cannot
// tell its reporters apart) and then in the read-only discipline with
// channel identifiers (Figure 4: the window *pulls* each Report
// channel and labels it).
//
// A final section shows the stage-fusion compiler: the same logical
// topology can occupy fewer physical Ejects, so the program reports
// the two counts separately throughout.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"asymstream"
	"asymstream/internal/experiments"
)

func main() {
	const items = 200

	fmt.Println("== Figure 3: write-only discipline, pushed reports ==")
	r3, err := experiments.RunFigure3(items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data items delivered: %d\n", r3.Items)
	fmt.Printf("report lines shown:   %d (merged anonymously — push fan-in)\n", r3.ReportLines)
	fmt.Printf("physical ejects: %d (unfused: every logical stage is its own Eject), data invocations: %d\n\n",
		r3.Ejects, r3.DataInv)

	fmt.Println("== Figure 4: read-only discipline, pulled report channels ==")
	r4, err := experiments.RunFigure4(items, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data items pulled:    %d\n", r4.Items)
	fmt.Printf("report lines shown:   %d (each labelled by source — the window knows its UIDs)\n", r4.ReportLines)
	fmt.Printf("physical ejects: %d (unfused: every logical stage is its own Eject), data invocations: %d\n\n",
		r4.Ejects, r4.DataInv)

	fmt.Println("== Figure 4 again, with unforgeable (capability) channel identifiers ==")
	r4c, err := experiments.RunFigure4(items, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data items pulled:    %d\n", r4c.Items)
	fmt.Printf("report lines shown:   %d\n", r4c.ReportLines)
	fmt.Println("only holders of a channel's UID can Read it (§5's security scheme)")

	fmt.Println("\n== Stage fusion: logical stages vs physical Ejects ==")
	sys := asymstream.NewSystem(asymstream.SystemConfig{})
	defer sys.Close()
	upper := func(ins []asymstream.ItemReader, outs []asymstream.ItemWriter) error {
		for {
			item, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := outs[0].Put(bytes.ToUpper(item)); err != nil {
				return err
			}
		}
	}
	fs := []asymstream.Filter{
		{Name: "f0", Body: upper}, {Name: "f1", Body: upper}, {Name: "f2", Body: upper},
	}
	sank := 0
	p, err := sys.Pipeline(asymstream.ReadOnly,
		asymstream.LinesSource("a\nb\nc\n"), fs,
		func(in asymstream.ItemReader) error {
			for {
				if _, err := in.Next(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
				sank++
			}
		},
		asymstream.Options{Fusion: asymstream.FusionOn})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("items delivered:  %d\n", sank)
	fmt.Printf("logical stages:   %d (source + 3 filters + sink)\n", p.LogicalStages)
	fmt.Printf("physical ejects:  %d (%d stages fused into %d group)\n",
		p.Ejects(), p.FusedStages, p.FusionGroups)
}
