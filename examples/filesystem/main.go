// Filesystem: the Eden file system of §2 in action.
//
//   - Files and directories are Ejects, addressed only by UID.
//   - A file is *written* by telling it to pull from a stream (§4's
//     inversion: "A file opened for output would immediately issue a
//     Read invocation").
//   - A directory List is itself a stream, so it can feed a pipeline.
//   - Checkpoint commits state to stable storage; after a node crash
//     the Ejects re-activate from their passive representations.
package main

import (
	"fmt"
	"log"

	"asymstream"
	"asymstream/internal/device"
	"asymstream/internal/fsys"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

func main() {
	sys := asymstream.NewSystem(asymstream.SystemConfig{})
	defer sys.Close()
	k := sys.Kernel()
	fsys.RegisterTypes(k)

	// A directory and two files, bound by name.
	dir, dirUID, err := fsys.NewDirectory(k, 0)
	if err != nil {
		log.Fatal(err)
	}
	_, poemUID, err := fsys.NewFile(k, 0)
	if err != nil {
		log.Fatal(err)
	}
	_, notesUID, err := fsys.NewFileWithContent(k, 0, []byte("remember the milk\n"))
	if err != nil {
		log.Fatal(err)
	}
	must(fsys.AddEntry(k, uid.Nil, dirUID, "poem", poemUID, false))
	must(fsys.AddEntry(k, uid.Nil, dirUID, "notes", notesUID, false))

	// Write the poem by telling the FILE to pull from a source Eject —
	// there is no Write invocation anywhere.
	srcUID, srcChan, err := device.StaticSource(k, 0, transput.SplitLines([]byte(
		"so much depends\nupon\na red wheel\nbarrow\n")), transput.ROStageConfig{Name: "poem-source"})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fsys.WriteFrom(k, uid.Nil, poemUID, fsys.StreamRef{UID: srcUID, Channel: srcChan}, false)
	must(err)
	fmt.Printf("poem written: %d lines, %d bytes, committed as checkpoint v%d\n", rep.Items, rep.Bytes, rep.Version)

	// Read it back through a pipeline: file → upcase → stdout, pulled
	// end to end.
	ref, err := fsys.Open(k, uid.Nil, poemUID, nil)
	must(err)
	data, err := fsys.ReadAll(k, uid.Nil, ref)
	must(err)
	fmt.Printf("poem content:\n%s", data)

	// List the directory — the listing is a stream too.
	listRef, err := fsys.List(k, uid.Nil, dirUID)
	must(err)
	listing, err := fsys.ReadAll(k, uid.Nil, listRef)
	must(err)
	fmt.Printf("directory listing (%d entries):\n%s", dir.Len(), listing)

	// Checkpoint the directory, crash the node, and invoke again: the
	// kernel re-activates both Ejects from stable storage.
	_, err = k.Checkpoint(dirUID)
	must(err)
	fmt.Println("crashing node 0...")
	k.CrashNode(0)

	lk, err := fsys.Lookup(k, uid.Nil, dirUID, "poem")
	must(err)
	fmt.Printf("after crash, directory lookup 'poem' -> found=%v (same UID: %v)\n", lk.Found, lk.Target == poemUID)
	ref2, err := fsys.Open(k, uid.Nil, lk.Target, nil)
	must(err)
	data2, err := fsys.ReadAll(k, uid.Nil, ref2)
	must(err)
	fmt.Printf("poem survives the crash (%d bytes), because WriteFrom checkpointed it\n", len(data2))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
