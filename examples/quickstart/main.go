// Quickstart: build the paper's Figure 2 — a read-only pipeline in
// which the sink pulls data through two filters from a source — run
// it, and print the invocation accounting that is the paper's
// headline claim (n+1 invocations per datum, n+2 Ejects; a buffered
// pipeline would need 2n+2 and 2n+3).
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"asymstream"
	"asymstream/internal/filters"
)

func main() {
	sys := asymstream.NewSystem(asymstream.SystemConfig{})
	defer sys.Close()

	// The workload: a small Fortran-ish program with comment lines,
	// straight from §3's example filter ("strip comment lines from a
	// Fortran program").
	src := asymstream.LinesSource(
		"C     COMPUTE THE ANSWER\n" +
			"      I = 6\n" +
			"C     THE OTHER FACTOR\n" +
			"      J = 7\n" +
			"      K = I * J\n" +
			"C     PRINT IT\n" +
			"      PRINT *, K\n")

	// Two pure filters: the same bodies run under every discipline.
	fs := []asymstream.Filter{
		{Name: "strip-comments", Body: filters.StripComments("C")},
		{Name: "line-numbers", Body: filters.LineNumber()},
	}

	// The sink actively pulls; everything upstream only responds.
	sink := func(in asymstream.ItemReader) error {
		for {
			item, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if _, err := os.Stdout.Write(item); err != nil {
				return err
			}
		}
	}

	before := sys.Metrics()
	p, err := sys.Pipeline(asymstream.ReadOnly, src, fs, sink, asymstream.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Run(); err != nil {
		log.Fatal(err)
	}
	after := sys.Metrics()

	n := len(fs)
	fmt.Println("---")
	fmt.Printf("discipline:        read-only (active input + passive output only)\n")
	fmt.Printf("ejects:            %d (paper predicts n+2 = %d; buffered would need 2n+3 = %d)\n",
		p.Ejects(), n+2, 2*n+3)
	fmt.Printf("invocations:       %d total, %d Transfer (data plane)\n",
		after.Get("invocations")-before.Get("invocations"),
		after.Get("transfer_invocations")-before.Get("transfer_invocations"))
	fmt.Printf("write invocations: %d — the Write primitive does not exist here\n",
		after.Get("deliver_invocations")-before.Get("deliver_invocations"))
}
