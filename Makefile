GO ?= go

.PHONY: check vet vet-custom staticcheck cover-floor build test race race-sharded bench bench-json json

## check: the pre-merge gate — vet (stock + staticcheck + the repo's
## own transput-vet analyzers), build, full tests, the race detector
## over the concurrency-heavy packages, and the coverage floor.  CI and
## contributors run this before merging.
check: vet vet-custom build test race cover-floor

vet: staticcheck
	$(GO) vet ./...

## staticcheck: honnef.co baseline (configured by staticcheck.conf).
## Skipped with a notice when the binary is not installed — the stock
## vet + transput-vet gate still runs everywhere.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

## vet-custom: the repo's own go/analysis-style suite.  Proves slab
## ownership (every Alloc/Retain is released on every path), discipline
## purity (readonly files never reach the push side and vice versa),
## fusion purity (fusable-tagged plumbing never reaches a port or a
## kernel invocation), pool hygiene (no use-after-Put, no missing Put),
## metrics-table completeness, lock-order consistency, goroutine
## termination, cond-wait discipline, and — via the protomodel
## analyzer — credit-protocol liveness by exhaustive model checking.
## The self-test first proves the model checker catches its own seeded
## mutants, so the zero-finding run that follows actually means
## something.  Zero findings is a merge requirement.
vet-custom:
	$(GO) run ./cmd/transput-vet -protomodel-selftest -protomodel-window 3
	$(GO) run ./cmd/transput-vet

## cover-floor: statement-coverage floor for the packages whose
## correctness arguments lean on tests — the wire codec/slab layer,
## the analyzer suite itself, the real-wire transport (bridge, remote
## sources, socket links) and the striped table layer.
cover-floor:
	@./scripts/cover_floor.sh internal/wire 70
	@./scripts/cover_floor.sh internal/analysis 70
	@./scripts/cover_floor.sh internal/transport 70
	@./scripts/cover_floor.sh internal/stripemap 70

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/kernel/... ./internal/transput/... ./internal/transport/... ./internal/stripemap/...

## race-sharded: a short, focused race run over the parallel engine
## (sharded rows, windowed links, merge, redirect) and the fusion
## compiler (fused groups, fused aborts, fused pools) — the subset CI
## runs on every push in addition to the full gate.
race-sharded:
	$(GO) test -race -run 'TestSharded|TestChained|TestShard|TestWindowed|TestRedirectShardedWindowed|TestPipelinePreservesArbitraryData|TestFused|TestFusion|TestRedirectAcrossFusedBoundary|TestPoolHint' ./internal/transput/ ./internal/kernel/

## bench: the per-hop micro-benchmarks the fast-path work is gated on,
## plus the parallel engine's end-to-end throughput benchmark.
bench:
	$(GO) test -run XXX -bench 'BenchmarkTransferHop|BenchmarkDeliverHop|BenchmarkInvoke' -benchmem ./internal/kernel/ ./internal/transput/
	$(GO) test -run XXX -bench BenchmarkPipelineThroughput -benchtime 500ms ./internal/transput/

## bench-json: regenerate the committed measurement files —
## BENCH_kernel.json (Figure 1/2 pipeline costs), BENCH_transput.json
## (the parallel engine's shards × window grid), BENCH_codec.json
## (gob vs wire codec costs and the fixed vs adaptive batching grid),
## BENCH_fusion.json (the stage-fusion compiler's fused vs unfused
## grid), BENCH_gateway.json (the ingress-gateway control-plane
## run: admission, idle footprint, steady state, churn) and
## BENCH_transport.json (the real-wire grid: netsim vs Unix-domain
## vs TCP loopback latency and throughput).
bench-json:
	$(GO) run ./cmd/transput-bench -json

## json: quick variant of bench-json (CI-sized workloads).
json:
	$(GO) run ./cmd/transput-bench -json -quick
