GO ?= go

.PHONY: check vet build test race race-sharded bench bench-json json

## check: the pre-merge gate — vet, build, full tests, and the race
## detector over the concurrency-heavy packages.  CI and contributors
## run this before merging.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/kernel/... ./internal/transput/...

## race-sharded: a short, focused race run over the parallel engine
## (sharded rows, windowed links, merge, redirect) — the subset CI runs
## on every push in addition to the full gate.
race-sharded:
	$(GO) test -race -run 'TestSharded|TestChained|TestShard|TestWindowed|TestRedirectShardedWindowed|TestPipelinePreservesArbitraryData' ./internal/transput/

## bench: the per-hop micro-benchmarks the fast-path work is gated on,
## plus the parallel engine's end-to-end throughput benchmark.
bench:
	$(GO) test -run XXX -bench 'BenchmarkTransferHop|BenchmarkDeliverHop|BenchmarkInvoke' -benchmem ./internal/kernel/ ./internal/transput/
	$(GO) test -run XXX -bench BenchmarkPipelineThroughput -benchtime 500ms ./internal/transput/

## bench-json: regenerate the committed measurement files —
## BENCH_kernel.json (Figure 1/2 pipeline costs), BENCH_transput.json
## (the parallel engine's shards × window grid) and BENCH_codec.json
## (gob vs wire codec costs and the fixed vs adaptive batching grid).
bench-json:
	$(GO) run ./cmd/transput-bench -json

## json: quick variant of bench-json (CI-sized workloads).
json:
	$(GO) run ./cmd/transput-bench -json -quick
