GO ?= go

.PHONY: check vet build test race bench json

## check: the pre-merge gate — vet, build, full tests, and the race
## detector over the concurrency-heavy packages.  CI and contributors
## run this before merging.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/kernel/... ./internal/transput/...

## bench: the per-hop micro-benchmarks the fast-path work is gated on.
bench:
	$(GO) test -run XXX -bench 'BenchmarkTransferHop|BenchmarkDeliverHop|BenchmarkInvoke' -benchmem ./internal/kernel/ ./internal/transput/

## json: machine-readable pipeline costs for the four Figure 1/2 shapes.
json:
	$(GO) run ./cmd/transput-bench -json -quick
