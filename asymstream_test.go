package asymstream

import (
	"fmt"
	"strings"
	"testing"

	"asymstream/internal/filters"
)

func TestFacadeQuickstart(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	defer sys.Close()

	var got [][]byte
	p, err := sys.Pipeline(ReadOnly,
		LinesSource("C comment\nhello\nworld\n"),
		[]Filter{
			{Name: "strip", Body: filters.StripComments("C")},
			{Name: "up", Body: filters.UpperCase()},
		},
		CollectSink(&got),
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "HELLO\n" || string(got[1]) != "WORLD\n" {
		t.Fatalf("got %q", got)
	}
	if p.Ejects() != 4 {
		t.Fatalf("ejects = %d", p.Ejects())
	}
}

func TestFacadeAllDisciplines(t *testing.T) {
	for _, d := range []Discipline{ReadOnly, WriteOnly, Buffered} {
		t.Run(d.String(), func(t *testing.T) {
			sys := NewSystem(SystemConfig{})
			defer sys.Close()
			var n int64
			p, err := sys.Pipeline(d, ItemsSource(make([][]byte, 64)), nil, DiscardSink(&n), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
			if n != 64 {
				t.Fatalf("%v: sink saw %d items", d, n)
			}
		})
	}
}

func TestFacadeMetricsVisible(t *testing.T) {
	sys := NewSystem(SystemConfig{DeterministicUIDs: 7})
	defer sys.Close()
	before := sys.Metrics()
	var n int64
	p, err := sys.Pipeline(ReadOnly, LinesSource("a\nb\n"), nil, DiscardSink(&n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	after := sys.Metrics()
	if after.Get("transfer_invocations") <= before.Get("transfer_invocations") {
		t.Error("transfer invocations not metered through the facade")
	}
	if after.Get("deliver_invocations") != 0 {
		t.Error("a read-only pipeline performed Write invocations")
	}
}

func TestFacadeUnixBaselineSharesMeter(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	usys := sys.UnixSystem()
	var got [][]byte
	pl := usys.Build(LinesSource("x\ny\n"), nil, CollectSink(&got), 8)
	if err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("unix baseline moved %d items", len(got))
	}
	if sys.Metrics().Get("syscalls") == 0 {
		t.Error("syscalls not visible on the shared meter")
	}
}

func TestMultiNodePlacementThroughFacade(t *testing.T) {
	sys := NewSystem(SystemConfig{Nodes: 4, EncodePayloads: true})
	defer sys.Close()
	var n int64
	p, err := sys.Pipeline(ReadOnly,
		LinesSource(strings.Repeat("data\n", 50)),
		[]Filter{
			{Name: "f0", Body: filters.Identity()},
			{Name: "f1", Body: filters.Identity()},
		},
		DiscardSink(&n),
		Options{Placement: func(role Role, index int) NodeID {
			switch role {
			case RoleSource:
				return 0
			case RoleFilter:
				return NodeID(index + 1)
			default:
				return 3
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("cross-node pipeline moved %d items", n)
	}
	if sys.Metrics().Get("cross_node_invocations") == 0 {
		t.Error("no cross-node invocations recorded")
	}
	if sys.Metrics().Get("wire_bytes") == 0 {
		t.Error("no wire bytes recorded with EncodePayloads")
	}
}

func TestLinesSourceFraming(t *testing.T) {
	var got [][]byte
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	p, err := sys.Pipeline(ReadOnly, LinesSource("a\nb"), nil, CollectSink(&got), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "a\n" || string(got[1]) != "b" {
		t.Fatalf("framing = %q", got)
	}
}

func TestItemsSourceCopies(t *testing.T) {
	items := [][]byte{[]byte("orig")}
	src := ItemsSource(items)
	copy(items[0], "XXXX")
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	var got [][]byte
	p, err := sys.Pipeline(ReadOnly, src, nil, CollectSink(&got), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "orig" {
		t.Fatalf("ItemsSource aliased caller data: %q", got[0])
	}
}

func ExampleSystem() {
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	var got [][]byte
	p, _ := sys.Pipeline(ReadOnly,
		LinesSource("C comment\ncode\n"),
		[]Filter{{Name: "strip", Body: filters.StripComments("C")}},
		CollectSink(&got),
		Options{})
	_ = p.Run()
	fmt.Printf("%s", got[0])
	// Output: code
}
