package asymstream

// Cross-package integration tests: the paper's own end-to-end
// scenarios, assembled from the real components (file system, devices,
// filters, transput) over one kernel.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"asymstream/internal/device"
	"asymstream/internal/filters"
	"asymstream/internal/fsys"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// syncBuf is a goroutine-safe byte buffer for device output.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestPaginatedListingScenario is §4 verbatim: "If a paginated listing
// were required, the printer server would be requested to read from
// the paginator, and the paginator to read from the file."
func TestPaginatedListingScenario(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	k := sys.Kernel()
	fsys.RegisterTypes(k)

	// The file.
	var content strings.Builder
	for i := 1; i <= 7; i++ {
		fmt.Fprintf(&content, "record %d\n", i)
	}
	_, fileUID, err := fsys.NewFileWithContent(k, 0, []byte(content.String()))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fsys.Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The paginator, reading from the file.
	pagUID := k.NewUID()
	pagIn := transput.NewInPort(k, pagUID, ref.UID, ref.Channel, transput.InPortConfig{})
	paginator := transput.NewROStage(k, transput.ROStageConfig{Name: "paginator"},
		filters.Paginate(3, "records"), pagIn)
	if err := k.CreateWithUID(pagUID, paginator, 0); err != nil {
		t.Fatal(err)
	}
	paginator.Start()

	// The printer server, requested to read from the paginator.
	var paper syncBuf
	_, printerUID, err := device.NewPrinter(k, 0, &paper)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := k.Invoke(uid.Nil, printerUID, device.OpPrint, &device.ReadFromRequest{
		Source:  pagUID,
		Channel: paginator.Writer(0).ID(),
		Label:   "records listing",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := raw.(*device.ReadFromReply)
	// 7 records at 3/page -> 3 page headers + 7 lines.
	if rep.Items != 10 {
		t.Fatalf("printer pulled %d items", rep.Items)
	}
	out := paper.String()
	if !strings.Contains(out, "=== records listing ===") {
		t.Fatalf("banner missing: %q", out)
	}
	if strings.Count(out, "page ") != 3 {
		t.Fatalf("page headers: %q", out)
	}
	if !strings.Contains(out, "record 7\n") {
		t.Fatalf("content missing: %q", out)
	}
}

// TestDirectoryListingThroughPipeline: §2/§4 — a directory behaves as
// a source, so its listing can feed an ordinary filter pipeline ending
// at a terminal.
func TestDirectoryListingThroughPipeline(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	k := sys.Kernel()
	fsys.RegisterTypes(k)

	_, dirUID, err := fsys.NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"apple", "banana", "avocado"} {
		if err := fsys.AddEntry(k, uid.Nil, dirUID, name, uid.New(), false); err != nil {
			t.Fatal(err)
		}
	}
	listRef, err := fsys.List(k, uid.Nil, dirUID)
	if err != nil {
		t.Fatal(err)
	}

	// grep ^a over the listing stream.
	grepUID := k.NewUID()
	grepIn := transput.NewInPort(k, grepUID, listRef.UID, listRef.Channel, transput.InPortConfig{})
	grep := transput.NewROStage(k, transput.ROStageConfig{Name: "grep"},
		filters.Grep("^a", false), grepIn)
	if err := k.CreateWithUID(grepUID, grep, 0); err != nil {
		t.Fatal(err)
	}
	grep.Start()

	var screen syncBuf
	_, termUID, err := device.NewTerminal(k, 0, &screen)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := k.Invoke(uid.Nil, termUID, device.OpReadFrom, &device.ReadFromRequest{
		Source:  grepUID,
		Channel: grep.Writer(0).ID(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := raw.(*device.ReadFromReply); rep.Items != 2 {
		t.Fatalf("terminal got %d lines", rep.Items)
	}
	out := screen.String()
	if !strings.Contains(out, "apple\t") || !strings.Contains(out, "avocado\t") || strings.Contains(out, "banana") {
		t.Fatalf("screen = %q", out)
	}
}

// TestSpellCheckScenario wires the two-input spelling checker with its
// dictionary coming from a file Eject — §5's multiple inputs realised
// as "n UIDs, each referring to an Eject which responds to read
// requests".
func TestSpellCheckScenario(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	k := sys.Kernel()
	fsys.RegisterTypes(k)

	_, dictUID, err := fsys.NewFileWithContent(k, 0, []byte("the\nquick\nfox\n"))
	if err != nil {
		t.Fatal(err)
	}
	dictRef, err := fsys.Open(k, uid.Nil, dictUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	textUID, textChan, err := device.StaticSource(k, 0,
		transput.SplitLines([]byte("the qiuck fox\n")), transput.ROStageConfig{Name: "text"})
	if err != nil {
		t.Fatal(err)
	}

	spellUID := k.NewUID()
	textIn := transput.NewInPort(k, spellUID, textUID, textChan, transput.InPortConfig{})
	dictIn := transput.NewInPort(k, spellUID, dictRef.UID, dictRef.Channel, transput.InPortConfig{Batch: 8})
	spell := transput.NewROStage(k, transput.ROStageConfig{Name: "spell"},
		filters.SpellCheck(), textIn, dictIn)
	if err := k.CreateWithUID(spellUID, spell, 0); err != nil {
		t.Fatal(err)
	}
	spell.Start()

	in := transput.NewInPort(k, uid.Nil, spellUID, spell.Writer(0).ID(), transput.InPortConfig{})
	var misspelled []string
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		misspelled = append(misspelled, strings.TrimSpace(string(item)))
	}
	if len(misspelled) != 1 || misspelled[0] != "qiuck" {
		t.Fatalf("misspelled = %v", misspelled)
	}
}

// TestLongPipelineStress runs a 32-filter pipeline in every discipline
// across 4 simulated nodes with payload serialisation on.
func TestLongPipelineStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 32
	const items = 400
	for _, d := range []Discipline{ReadOnly, WriteOnly, Buffered} {
		t.Run(d.String(), func(t *testing.T) {
			sys := NewSystem(SystemConfig{Nodes: 4, EncodePayloads: true})
			defer sys.Close()
			var fs []Filter
			for i := 0; i < n; i++ {
				fs = append(fs, Filter{Name: fmt.Sprintf("f%d", i), Body: filters.Identity()})
			}
			var count int64
			p, err := sys.Pipeline(d, LinesSource(strings.Repeat("payload\n", items)), fs, DiscardSink(&count),
				Options{Batch: 4, Placement: func(role Role, index int) NodeID {
					return NodeID(index % 4)
				}})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
			if count != items {
				t.Fatalf("moved %d items", count)
			}
		})
	}
}

// TestCheckpointGroupWithFiles commits a directory and its files
// atomically, then crashes: either the whole tree recovers or none of
// it would — the §7 atomic-updates subset over real fsys Ejects.
func TestCheckpointGroupWithFiles(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	k := sys.Kernel()
	fsys.RegisterTypes(k)

	_, dirUID, err := fsys.NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fileUIDs []UID
	for i := 0; i < 3; i++ {
		f, fUID, err := fsys.NewFileWithContent(k, 0, []byte(fmt.Sprintf("file %d\n", i)))
		if err != nil {
			t.Fatal(err)
		}
		_ = f
		if err := fsys.AddEntry(k, uid.Nil, dirUID, fmt.Sprintf("f%d", i), fUID, false); err != nil {
			t.Fatal(err)
		}
		fileUIDs = append(fileUIDs, fUID)
	}
	group := append([]UID{dirUID}, fileUIDs...)
	if _, err := k.CheckpointGroup(group); err != nil {
		t.Fatal(err)
	}
	k.CrashNode(0)
	for i := 0; i < 3; i++ {
		rep, err := fsys.Lookup(k, uid.Nil, dirUID, fmt.Sprintf("f%d", i))
		if err != nil || !rep.Found {
			t.Fatalf("entry f%d lost: %+v %v", i, rep, err)
		}
		ref, err := fsys.Open(k, uid.Nil, rep.Target, nil)
		if err != nil {
			t.Fatal(err)
		}
		data, err := fsys.ReadAll(k, uid.Nil, ref)
		if err != nil || string(data) != fmt.Sprintf("file %d\n", i) {
			t.Fatalf("file f%d content %q %v", i, data, err)
		}
	}
}

// TestConcurrentPipelinesSharedKernel runs many pipelines of mixed
// disciplines concurrently on ONE kernel — the realistic Eden
// situation, where a node hosts many unrelated services at once.
func TestConcurrentPipelinesSharedKernel(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	defer sys.Close()
	const pipelines = 12
	const items = 150
	var wg sync.WaitGroup
	errs := make(chan error, pipelines)
	counts := make([]int64, pipelines)
	for i := 0; i < pipelines; i++ {
		d := []Discipline{ReadOnly, WriteOnly, Buffered}[i%3]
		wg.Add(1)
		go func(i int, d Discipline) {
			defer wg.Done()
			p, err := sys.Pipeline(d,
				func(out ItemWriter) error {
					for j := 0; j < items; j++ {
						if err := out.Put([]byte(fmt.Sprintf("p%d-%d\n", i, j))); err != nil {
							return err
						}
					}
					return nil
				},
				[]Filter{{Name: "f", Body: filters.UpperCase()}},
				DiscardSink(&counts[i]),
				Options{Batch: 1 + i%4})
			if err != nil {
				errs <- err
				return
			}
			if err := p.Run(); err != nil {
				errs <- fmt.Errorf("pipeline %d (%v): %w", i, d, err)
			}
		}(i, d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != items {
			t.Fatalf("pipeline %d moved %d items", i, c)
		}
	}
}
