package asymstream

// Benchmark harness: one benchmark per figure/claim of the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md).  Each benchmark
// runs a complete pipeline per iteration and reports, alongside
// ns/op, the reproduction's domain metrics:
//
//	inv/datum  — data-plane invocations per item (the paper's cost unit)
//	items/s    — end-to-end stream throughput
//
// The counting claims (n+1 vs 2n+2, n+2 vs 2n+3 Ejects) are asserted
// exactly in the test suite; the benchmarks show the same quantities
// under load.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"asymstream/internal/experiments"
	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// benchItems is the stream length per pipeline run inside benchmarks.
const benchItems = 512

// benchLinear runs one full pipeline per b.N iteration and reports
// domain metrics.
func benchLinear(b *testing.B, d Discipline, n int, opt Options) {
	b.Helper()
	var lastInvPerDatum float64
	var items int64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLinear(d, n, benchItems, opt)
		if err != nil {
			b.Fatal(err)
		}
		lastInvPerDatum = res.PerDatum()
		items += res.Items
	}
	elapsed := time.Since(start)
	b.ReportMetric(lastInvPerDatum, "inv/datum")
	b.ReportMetric(float64(items)/elapsed.Seconds(), "items/s")
}

// BenchmarkFig1UnixPipeline regenerates Figure 1 (E1): the
// conventional Unix pipeline, 2n+2 syscalls per datum.
func BenchmarkFig1UnixPipeline(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var items int64
			var lastSys float64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, _, _, err := experiments.RunUnix(n, benchItems, 64)
				if err != nil {
					b.Fatal(err)
				}
				lastSys = float64(res.DataInvocations-int64(2*(n+1))) / float64(res.Items)
				items += res.Items
			}
			b.ReportMetric(lastSys, "syscalls/datum")
			b.ReportMetric(float64(items)/time.Since(start).Seconds(), "items/s")
		})
	}
}

// BenchmarkFig2ReadOnlyPipeline regenerates Figure 2 (E2): the
// read-only discipline, n+1 invocations per datum, n+2 Ejects.
func BenchmarkFig2ReadOnlyPipeline(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchLinear(b, ReadOnly, n, Options{})
		})
	}
}

// BenchmarkBufferedEdenPipeline regenerates the §4 baseline (E3): the
// conventional discipline inside Eden, 2n+2 invocations per datum,
// 2n+3 Ejects.
func BenchmarkBufferedEdenPipeline(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchLinear(b, Buffered, n, Options{})
		})
	}
}

// BenchmarkWriteOnlyPipeline regenerates the §5 dual (E4).
func BenchmarkWriteOnlyPipeline(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchLinear(b, WriteOnly, n, Options{})
		})
	}
}

// BenchmarkBatchSize is ablation A1: Transfer's Max parameter.
func BenchmarkBatchSize(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchLinear(b, ReadOnly, 4, Options{Batch: batch})
		})
	}
}

// BenchmarkPrefetchDepth is ablation A2: the InPort's anticipatory
// read-ahead.
func BenchmarkPrefetchDepth(b *testing.B) {
	for _, pref := range []int{0, 4, 16} {
		b.Run(fmt.Sprintf("prefetch=%d", pref), func(b *testing.B) {
			benchLinear(b, ReadOnly, 4, Options{Batch: 8, Prefetch: pref})
		})
	}
}

// BenchmarkRecordStream is ablation A3: §6's typed record streams vs
// raw byte lines.
func BenchmarkRecordStream(b *testing.B) {
	type rec struct {
		Seq  int
		Name string
	}
	b.Run("bytes", func(b *testing.B) {
		benchLinear(b, ReadOnly, 1, Options{Batch: 8})
	})
	b.Run("gob-records", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := NewSystem(SystemConfig{})
			src := func(out ItemWriter) error {
				w := transput.NewRecordWriter[rec](out)
				for j := 0; j < benchItems; j++ {
					if err := w.Write(rec{Seq: j, Name: "r"}); err != nil {
						return err
					}
				}
				return nil
			}
			sink := func(in ItemReader) error {
				r := transput.NewRecordReader[rec](in)
				for {
					if _, err := r.Read(); err == io.EOF {
						return nil
					} else if err != nil {
						return err
					}
				}
			}
			p, err := sys.Pipeline(ReadOnly, src, nil, sink, Options{Batch: 8})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Run(); err != nil {
				b.Fatal(err)
			}
			sys.Close()
		}
	})
}

// BenchmarkCapabilityChannels is E8's cost row: capability vs integer
// channel addressing on the Transfer path.
func BenchmarkCapabilityChannels(b *testing.B) {
	for _, capMode := range []bool{false, true} {
		name := "integer"
		if capMode {
			name = "capability"
		}
		b.Run(name, func(b *testing.B) {
			benchLinear(b, ReadOnly, 1, Options{CapabilityMode: capMode})
		})
	}
}

// BenchmarkCostHierarchy is E9: the primitive cost ladder the paper's
// argument rests on.
func BenchmarkCostHierarchy(b *testing.B) {
	b.Run("intra-eject-chan-op", func(b *testing.B) {
		ch := make(chan []byte, 1)
		done := make(chan struct{})
		go func() {
			for range ch {
			}
			close(done)
		}()
		item := []byte("x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch <- item
		}
		close(ch)
		<-done
	})
	b.Run("local-invocation", func(b *testing.B) {
		k := kernel.New(kernel.Config{})
		defer k.Shutdown()
		id, err := k.Create(echo{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Invoke(uid.Nil, id, transput.OpChannels, &transput.ChannelsRequest{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cross-node-invocation-gob", func(b *testing.B) {
		k := kernel.New(kernel.Config{Net: netsim.Config{Nodes: 2, EncodePayloads: true}})
		defer k.Shutdown()
		id, err := k.Create(echo{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Invoke(uid.Nil, id, transput.OpChannels, &transput.ChannelsRequest{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// echo is the cheapest invocation target.
type echo struct{}

func (echo) EdenType() string { return "bench.Echo" }
func (echo) Serve(inv *kernel.Invocation) {
	if inv.Op == transput.OpChannels {
		inv.Reply(&transput.ChannelsReply{})
		return
	}
	inv.Fail(kernel.ErrNoSuchOperation)
}

// BenchmarkFig3WriteOnlyReports regenerates Figure 3 (E6).
func BenchmarkFig3WriteOnlyReports(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure3(benchItems)
		if err != nil {
			b.Fatal(err)
		}
		if res.Items != benchItems {
			b.Fatalf("items = %d", res.Items)
		}
	}
}

// BenchmarkFig4ReadOnlyChannels regenerates Figure 4 (E7).
func BenchmarkFig4ReadOnlyChannels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure4(benchItems, false)
		if err != nil {
			b.Fatal(err)
		}
		if res.Items != benchItems {
			b.Fatalf("items = %d", res.Items)
		}
	}
}

// BenchmarkCrossNodePipeline is E9b's substrate: the same read-only
// pipeline with every stage on a different simulated node and payload
// serialisation on, vs the single-node layout.
func BenchmarkCrossNodePipeline(b *testing.B) {
	const n = 4
	b.Run("single-node", func(b *testing.B) {
		benchLinear(b, ReadOnly, n, Options{})
	})
	b.Run("node-per-stage-gob", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := kernel.New(kernel.Config{Net: netsim.Config{Nodes: n + 2, EncodePayloads: true}})
			var count int64
			src := func(out transput.ItemWriter) error {
				for j := 0; j < benchItems; j++ {
					if err := out.Put([]byte("payload line\n")); err != nil {
						return err
					}
				}
				return nil
			}
			sink := func(in transput.ItemReader) error {
				for {
					_, err := in.Next()
					if err == io.EOF {
						return nil
					}
					if err != nil {
						return err
					}
					count++
				}
			}
			var fs []transput.Filter
			for j := 0; j < n; j++ {
				fs = append(fs, transput.Filter{Name: "id", Body: func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
					for {
						item, err := ins[0].Next()
						if err == io.EOF {
							return nil
						}
						if err != nil {
							return err
						}
						if err := outs[0].Put(item); err != nil {
							return err
						}
					}
				}})
			}
			p, err := transput.BuildPipeline(k, transput.ReadOnly, src, fs, sink, transput.Options{
				Placement: func(role transput.Role, index int) netsim.NodeID {
					switch role {
					case transput.RoleSource:
						return 0
					case transput.RoleFilter:
						return netsim.NodeID(index + 1)
					default:
						return netsim.NodeID(n + 1)
					}
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Run(); err != nil {
				b.Fatal(err)
			}
			k.Shutdown()
			if count != benchItems {
				b.Fatalf("count = %d", count)
			}
		}
	})
}

// BenchmarkDirectDispatch is ablation A4: the kernel's scheduling
// overhead isolated from its communication accounting.
func BenchmarkDirectDispatch(b *testing.B) {
	run := func(b *testing.B, direct bool) {
		for i := 0; i < b.N; i++ {
			k := kernel.New(kernel.Config{DirectDispatch: direct})
			var count int64
			p, err := transput.BuildPipeline(k, transput.ReadOnly,
				func(out transput.ItemWriter) error {
					for j := 0; j < benchItems; j++ {
						if err := out.Put([]byte("x")); err != nil {
							return err
						}
					}
					return nil
				},
				nil,
				func(in transput.ItemReader) error {
					for {
						_, err := in.Next()
						if err == io.EOF {
							return nil
						}
						if err != nil {
							return err
						}
						count++
					}
				}, transput.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Run(); err != nil {
				b.Fatal(err)
			}
			k.Shutdown()
		}
	}
	b.Run("mailbox", func(b *testing.B) { run(b, false) })
	b.Run("direct", func(b *testing.B) { run(b, true) })
}

// BenchmarkLazinessStartup measures time-to-first-item for a lazy
// pipeline (nothing precomputed) vs an anticipatory one (buffers
// already full when the sink arrives) — E5's two poles.
func BenchmarkLazinessStartup(b *testing.B) {
	run := func(b *testing.B, lazy bool) {
		for i := 0; i < b.N; i++ {
			k := kernel.New(kernel.Config{})
			st := transput.NewROStage(k, transput.ROStageConfig{
				Name:      "src",
				LazyStart: lazy,
			}, func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
				for j := 0; j < 64; j++ {
					if err := outs[0].Put([]byte("x")); err != nil {
						return err
					}
				}
				return nil
			})
			id := k.NewUID()
			if err := k.CreateWithUID(id, st, 0); err != nil {
				b.Fatal(err)
			}
			if !lazy {
				st.Start()
			}
			in := transput.NewInPort(k, uid.Nil, id, transput.Chan(0), transput.InPortConfig{})
			if _, err := in.Next(); err != nil {
				b.Fatal(err)
			}
			k.Shutdown()
		}
	}
	b.Run("lazy", func(b *testing.B) { run(b, true) })
	b.Run("anticipatory", func(b *testing.B) { run(b, false) })
}

// BenchmarkFanTopologies is E10 under testing.B: the four fan
// directions of §5 at degree 4.
func BenchmarkFanTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.E10Fan([]int{4}, 64)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) != 4 {
			b.Fatalf("rows = %d", len(tb.Rows))
		}
	}
}
